"""Lifecycle and parity tests of the shared-memory serve layer.

Covers the :class:`~repro.serve.store.SharedCloudStore` refcount contract
(attach/detach/unlink, double-close idempotence, borrowed attaches), the
orphaned-segment story (a killed refcounted holder leaks by design until
``force_unlink``), cross-process attach through the
:class:`~repro.serve.service.QueryService` pool, and bitwise parity of every
registered backend over an attached tree vs. a process-local index.

Every test runs under a leak-check fixture: no ``repro-store-*`` segment may
survive a test, whatever path it took through the API.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core.compressed_leaf import compression_pass_count
from repro.engine import PointCloudIndex, backend_names
from repro.serve import QueryService, SharedCloudStore

SEGMENT_GLOB = "/dev/shm/repro-store-*"


def _segments() -> list:
    return sorted(glob.glob(SEGMENT_GLOB))


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must unlink every shared segment it created."""
    before = _segments()
    yield
    leaked = [name for name in _segments() if name not in before]
    for name in leaked:  # clean up so one failure doesn't cascade
        try:
            os.unlink(name)
        except OSError:
            pass
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(41)
    return rng.uniform(-12.0, 12.0, (2500, 3)).astype(np.float32)


@pytest.fixture(scope="module")
def queries(cloud):
    rng = np.random.default_rng(42)
    base = cloud[rng.integers(0, len(cloud), 80)]
    return base.astype(np.float64) + rng.normal(0.0, 0.25, base.shape)


# ----------------------------------------------------------------------
# Refcount lifecycle
# ----------------------------------------------------------------------
class TestRefcounting:
    def test_create_attach_detach_unlink(self, cloud):
        store = SharedCloudStore.create(cloud)
        assert store.refcount == 1
        assert SharedCloudStore.exists(store.name)

        second = SharedCloudStore.attach(store.name)
        assert store.refcount == 2
        second.close()
        assert store.refcount == 1
        assert SharedCloudStore.exists(store.name)

        store.close()
        assert not SharedCloudStore.exists(store.name)

    def test_last_closer_unlinks_regardless_of_order(self, cloud):
        store = SharedCloudStore.create(cloud)
        second = SharedCloudStore.attach(store.name)
        # The creator closes first; the attacher keeps the store alive.
        store.close()
        assert SharedCloudStore.exists(store.name)
        assert second.refcount == 1
        second.close()
        assert not SharedCloudStore.exists(store.name)

    def test_double_close_is_idempotent(self, cloud):
        store = SharedCloudStore.create(cloud)
        second = SharedCloudStore.attach(store.name)
        second.close()
        second.close()  # must not decrement twice
        assert store.refcount == 1
        store.close()
        store.close()
        assert not SharedCloudStore.exists(store.name)

    def test_borrowed_attach_does_not_refcount(self, cloud):
        store = SharedCloudStore.create(cloud)
        borrowed = SharedCloudStore.attach(store.name, refcounted=False)
        assert store.refcount == 1
        # A borrowed close must not decrement either.
        borrowed.close()
        assert store.refcount == 1
        assert SharedCloudStore.exists(store.name)
        store.close()

    def test_attach_missing_store_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedCloudStore.attach("repro-store-nonexistent")

    def test_context_manager(self, cloud):
        with SharedCloudStore.create(cloud) as store:
            name = store.name
            assert SharedCloudStore.exists(name)
        assert store.closed
        assert not SharedCloudStore.exists(name)

    def test_closed_store_refuses_tree(self, cloud):
        store = SharedCloudStore.create(cloud)
        store.close()
        with pytest.raises(ValueError):
            store.tree()


# ----------------------------------------------------------------------
# Orphan cleanup (killed holder)
# ----------------------------------------------------------------------
def _hold_attached(name, started):
    store = SharedCloudStore.attach(name)
    started.set()
    time.sleep(60)  # killed long before this expires
    store.close()  # pragma: no cover - never reached


class TestOrphanCleanup:
    def test_killed_holder_orphans_then_force_unlink(self, cloud):
        store = SharedCloudStore.create(cloud)
        ctx = multiprocessing.get_context("fork")
        started = ctx.Event()
        holder = ctx.Process(target=_hold_attached,
                             args=(store.name, started), daemon=True)
        holder.start()
        assert started.wait(timeout=30)
        assert store.refcount == 2

        os.kill(holder.pid, signal.SIGKILL)
        holder.join(timeout=30)

        # The SIGKILLed holder never decremented: closing the last live
        # handle leaves the segments orphaned by design (refcount still 1)
        # rather than unlinking memory another process might still map.
        store.close()
        assert SharedCloudStore.exists(store.name)

        # force_unlink is the supervisor-side cleanup for exactly this.
        assert SharedCloudStore.force_unlink(store.name)
        assert not SharedCloudStore.exists(store.name)
        assert not SharedCloudStore.force_unlink(store.name)  # idempotent


# ----------------------------------------------------------------------
# Parity and compression accounting
# ----------------------------------------------------------------------
class TestAttachedTreeParity:
    def test_all_backends_bitwise_match_local_index(self, cloud, queries):
        with PointCloudIndex(cloud) as local, \
                SharedCloudStore.create(cloud) as store, \
                SharedCloudStore.attach(store.name) as client:
            with client.index() as served:
                for name in backend_names():
                    got = served.radius_search(queries, 0.6, backend=name)
                    ref = local.radius_search(queries, 0.6, backend=name)
                    assert np.array_equal(got.offsets, ref.offsets), name
                    assert np.array_equal(got.point_indices,
                                          ref.point_indices), name
                    got_k = served.knn(queries, 5, backend=name)
                    ref_k = local.knn(queries, 5, backend=name)
                    assert np.array_equal(got_k.indices, ref_k.indices), name
                    assert np.array_equal(got_k.distances,
                                          ref_k.distances), name

    def test_attached_index_never_recompresses(self, cloud, queries):
        with SharedCloudStore.create(cloud) as store, \
                SharedCloudStore.attach(store.name) as client:
            passes_before = compression_pass_count()
            with client.index() as served:
                served.radius_search(queries, 0.6, backend="bonsai-batched")
                served.knn(queries, 5, backend="bonsai-perquery")
            assert compression_pass_count() == passes_before

    def test_create_runs_exactly_one_pass(self, cloud):
        passes_before = compression_pass_count()
        with SharedCloudStore.create(cloud):
            assert compression_pass_count() == passes_before + 1

    def test_precompressed_tree_is_reused(self, cloud):
        """Creating a store from an already-compressed tree adds no pass."""
        index = PointCloudIndex(cloud)
        index.ensure_compressed()
        passes_before = compression_pass_count()
        with SharedCloudStore.create(index.tree) as store:
            assert compression_pass_count() == passes_before
            assert store.n_points == len(cloud)
        index.close()

    def test_shared_arrays_are_readonly_views(self, cloud):
        with SharedCloudStore.create(cloud) as store:
            tree = store.tree()
            assert not tree.points.flags.writeable
            with pytest.raises(ValueError):
                tree.points[0, 0] = 0.0


# ----------------------------------------------------------------------
# QueryService over the store
# ----------------------------------------------------------------------
class TestQueryService:
    def test_mixed_traffic_matches_local(self, cloud, queries):
        with PointCloudIndex(cloud) as local, \
                QueryService(cloud, n_workers=2) as service:
            got = service.radius(queries, 0.6, backend="bonsai-batched")
            ref = local.radius_search(queries, 0.6, backend="bonsai-batched")
            assert np.array_equal(got.offsets, ref.offsets)
            assert np.array_equal(got.point_indices, ref.point_indices)

            got_k = service.knn(queries, 5, backend="baseline-batched")
            ref_k = local.knn(queries, 5, backend="baseline-batched")
            assert np.array_equal(got_k.indices, ref_k.indices)
            assert np.array_equal(got_k.distances, ref_k.distances)

    def test_serve_preserves_request_order(self, cloud, queries):
        with QueryService(cloud, n_workers=2) as service:
            requests = [("radius", queries, 0.4, "baseline-batched"),
                        ("knn", queries, 3, "bonsai-batched"),
                        ("radius", queries, 0.8, "bonsai-batched")]
            results = service.serve(requests)
            assert len(results) == 3
            # Radius results are (offsets, point_indices) pairs; a larger
            # radius can only grow the hit count — order would scramble this.
            assert results[0][0][-1] <= results[2][0][-1]

    def test_serial_and_pooled_results_identical(self, cloud, queries):
        with QueryService(cloud, n_workers=2) as pooled, \
                QueryService(cloud, serial=True) as serial:
            a = pooled.radius(queries, 0.6, backend="bonsai-batched")
            b = serial.radius(queries, 0.6, backend="bonsai-batched")
            assert np.array_equal(a.offsets, b.offsets)
            assert np.array_equal(a.point_indices, b.point_indices)

    def test_borrowed_store_survives_service_close(self, cloud, queries):
        with SharedCloudStore.create(cloud) as store:
            service = QueryService(store, serial=True)
            service.radius(queries, 0.5)
            service.close()
            # The service borrowed the store: closing it must not unlink.
            assert SharedCloudStore.exists(store.name)
            with pytest.raises(ValueError):
                service.serve([("radius", queries, 0.5, "baseline-batched")])

    def test_mp_backend_pool_attaches_by_name(self, cloud):
        """The ``*-batched-mp`` pool path over a shared tree (no pickle)."""
        rng = np.random.default_rng(43)
        base = cloud[rng.integers(0, len(cloud), 200)]
        big = base.astype(np.float64) + rng.normal(0.0, 0.25, base.shape)
        with PointCloudIndex(cloud) as local, \
                SharedCloudStore.create(cloud) as store:
            with store.index() as served:
                got = served.radius_search(big, 0.6,
                                           backend="bonsai-batched-mp")
                ref = local.radius_search(big, 0.6,
                                          backend="bonsai-batched-mp")
                assert np.array_equal(got.offsets, ref.offsets)
                assert np.array_equal(got.point_indices, ref.point_indices)
