"""Property-style batch/per-query parity across the scenario library.

PR 1 proved exact parity of the batched query engine against the per-query
reference paths — on one urban point distribution.  These tests re-assert
the property over the whole scenario library and randomized query sets:
for seeded random (scenario, seed) cases, ``batch_radius_search`` /
``batch_knn`` / the Bonsai batch searcher must return exactly what the
per-query paths return, and the aggregated ``SearchStats`` / ``BonsaiStats``
must match counter for counter.

A compact three-scenario slice runs in tier-1; the full scenario x seed
sweep is marked ``slow`` (run it with ``pytest -m slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bonsai_search import BonsaiRadiusSearch
from repro.kdtree import SearchStats, build_kdtree, nearest_neighbors, radius_search
from repro.pointcloud import preprocess_for_clustering
from repro.runtime import BonsaiBatchSearcher, batch_knn, batch_radius_search
from repro.scenarios import build_sequence, scenario_names

#: Scenarios covering the distribution extremes in tier-1: dense indoor,
#: long/thin outdoor, and the urban reference.
TIER1_SCENARIOS = ("urban", "warehouse_indoor", "highway")
TIER1_SEEDS = (3, 11)


def _make_case(scenario: str, seed: int, n_beams: int = 14,
               n_azimuth_steps: int = 120, n_queries: int = 80):
    """Deterministic (tree, queries, radius, k) drawn from the case seed."""
    sequence = build_sequence(scenario, n_frames=2, seed=seed,
                              n_beams=n_beams, n_azimuth_steps=n_azimuth_steps)
    cloud = preprocess_for_clustering(sequence.frame(1))
    tree = build_kdtree(cloud)
    rng = np.random.default_rng(seed * 7919 + 13)
    base = cloud.points[rng.integers(0, len(cloud), n_queries)]
    queries = base.astype(np.float64) + rng.normal(0.0, 0.4, base.shape)
    radius = float(rng.uniform(0.3, 1.2))
    k = int(rng.integers(1, 8))
    return tree, queries, radius, k


@pytest.fixture(scope="module", params=[(s, seed) for s in TIER1_SCENARIOS
                                        for seed in TIER1_SEEDS],
                ids=lambda case: f"{case[0]}-seed{case[1]}")
def case(request):
    return _make_case(*request.param)


def _stats_tuple(stats: SearchStats):
    return (stats.queries, stats.leaves_visited, stats.interior_visited,
            stats.points_examined, stats.points_in_radius,
            stats.point_bytes_loaded)


def _assert_radius_parity(tree, queries, radius):
    single_stats = SearchStats()
    single = [sorted(radius_search(tree, q, radius, stats=single_stats))
              for q in queries]
    batch_stats = SearchStats()
    batch = batch_radius_search(tree, queries, radius, stats=batch_stats)
    assert batch.as_lists() == single
    assert _stats_tuple(batch_stats) == _stats_tuple(single_stats)
    assert batch_stats.leaf_visit_counts == single_stats.leaf_visit_counts


def _assert_knn_parity(tree, queries, k):
    single = [nearest_neighbors(tree, q, k) for q in queries]
    batch = batch_knn(tree, queries, k).as_lists()
    for expected, got in zip(single, batch):
        assert [i for i, _ in expected] == [i for i, _ in got]
        assert [d for _, d in expected] == [d for _, d in got]


def _assert_bonsai_parity(tree, queries, radius):
    per_query = BonsaiRadiusSearch(tree)
    single = [sorted(per_query.search(q, radius)) for q in queries]
    batch = BonsaiBatchSearcher(tree)
    result = batch.radius_search(queries, radius)
    assert result.as_lists() == single
    assert _stats_tuple(batch.stats) == _stats_tuple(per_query.stats)
    expected, got = per_query.bonsai_stats, batch.bonsai_stats
    assert (got.leaf_visits, got.slices_loaded, got.compressed_bytes_loaded,
            got.points_classified, got.conclusive_in, got.conclusive_out,
            got.inconclusive, got.recompute_bytes_loaded) == \
           (expected.leaf_visits, expected.slices_loaded,
            expected.compressed_bytes_loaded, expected.points_classified,
            expected.conclusive_in, expected.conclusive_out,
            expected.inconclusive, expected.recompute_bytes_loaded)


class TestTier1Parity:
    """Randomized parity on the three-scenario tier-1 slice."""

    def test_radius_matches_per_query(self, case):
        tree, queries, radius, _ = case
        _assert_radius_parity(tree, queries, radius)

    def test_knn_matches_per_query(self, case):
        tree, queries, _, k = case
        _assert_knn_parity(tree, queries, k)

    def test_bonsai_matches_per_query(self, case):
        tree, queries, radius, _ = case
        _assert_bonsai_parity(tree, queries, radius)

    def test_bonsai_matches_baseline_results(self, case):
        tree, queries, radius, _ = case
        baseline = batch_radius_search(tree, queries, radius)
        bonsai = BonsaiBatchSearcher(tree).radius_search(queries, radius)
        assert bonsai.as_lists() == baseline.as_lists()


@pytest.mark.slow
@pytest.mark.parametrize("scenario", scenario_names())
@pytest.mark.parametrize("seed", (1, 5, 23))
def test_full_scenario_sweep_parity(scenario, seed):
    """The full matrix: every registered world, several seeds, denser frames."""
    tree, queries, radius, k = _make_case(
        scenario, seed, n_beams=20, n_azimuth_steps=220, n_queries=150)
    _assert_radius_parity(tree, queries, radius)
    _assert_knn_parity(tree, queries, k)
    _assert_bonsai_parity(tree, queries, radius)
