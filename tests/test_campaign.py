"""Tests of the differential-testing campaign engine.

Three layers: the randomized-world factory (determinism, JSON roundtrip,
scenario restriction), a bounded-budget smoke campaign over every registered
backend (must be clean and bitwise-deterministic), and the full
divergence-hunting path — a deliberately broken backend registered for the
test only must be caught, shrunk to a minimal case, and emitted as a
runnable pytest reproducer that actually fails.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    WorldSpec,
    random_world,
    run_campaign,
)
from repro.engine import get_backend, register_backend
from repro.engine.registry import _REGISTRY as _BACKEND_REGISTRY
from repro.kdtree.radius_search import SearchStats
from repro.runtime.batch import BatchRadiusResult
from repro.scenarios import scenario_names


class TestRandomWorld:
    def test_same_seed_same_world(self):
        assert random_world(7) == random_world(7)

    def test_seeds_vary_the_world(self):
        worlds = {random_world(seed) for seed in range(8)}
        assert len(worlds) > 1

    def test_json_roundtrip(self):
        world = random_world(3)
        payload = json.loads(json.dumps(world.as_dict()))
        assert WorldSpec.from_dict(payload) == world

    def test_scenario_restriction(self):
        for seed in range(4):
            assert random_world(seed, scenarios=["urban"]).scenario == "urban"

    def test_scenarios_come_from_the_registry(self):
        names = set(scenario_names())
        assert all(random_world(seed).scenario in names for seed in range(12))

    def test_pipeline_ops_can_be_disabled(self):
        for seed in range(20):
            world = random_world(seed, pipeline_ops=False)
            assert all(op.kind != "pipeline" for op in world.ops)

    def test_cloud_is_deterministic_and_nonempty(self):
        world = random_world(11)
        a, b = world.build_cloud(), world.build_cloud()
        assert len(a) > 0
        assert np.array_equal(a.points, b.points)

    def test_op_queries_are_deterministic(self):
        world = random_world(5, pipeline_ops=False)
        cloud = world.build_cloud()
        for op_index in range(len(world.ops)):
            first = world.op_queries(op_index, cloud)
            assert first.shape[1] == 3 and first.dtype == np.float64
            assert np.array_equal(first, world.op_queries(op_index, cloud))


class TestSmokeCampaign:
    """Bounded-budget clean campaign: the tier-1 wiring of the engine."""

    def test_smoke_campaign_is_clean_and_writes_manifest(self, tmp_path):
        config = CampaignConfig(budget=2, seed=0, out_dir=tmp_path / "a")
        result = run_campaign(config)
        assert result.n_divergences == 0
        manifest = json.loads(result.manifest_path.read_text())
        assert manifest["n_divergences"] == 0
        assert manifest["campaign"]["seed"] == 0
        assert len(manifest["trials"]) == 2
        assert manifest["campaign"]["reference"] == "baseline-batched"
        # Every trial records its full world spec for replay.
        for trial in manifest["trials"]:
            world = WorldSpec.from_dict(trial["world"])
            assert world.seed == trial["world"]["seed"]

    def test_campaign_is_bitwise_deterministic(self, tmp_path):
        config_a = CampaignConfig(budget=2, seed=4, out_dir=tmp_path / "a")
        config_b = CampaignConfig(budget=2, seed=4, out_dir=tmp_path / "b")
        manifest_a = run_campaign(config_a).manifest_path.read_bytes()
        manifest_b = run_campaign(config_b).manifest_path.read_bytes()
        assert manifest_a == manifest_b

    def test_unknown_backend_rejected_with_listing(self):
        config = CampaignConfig(backends=("warp-drive",))
        with pytest.raises(KeyError, match="baseline-batched"):
            config.resolved_backends()


class _BrokenBatchedBackend:
    """baseline-batched clone that silently drops the last radius hit."""

    name = "broken-batched"

    def __init__(self, tree, stats=None, **_):
        self._inner = get_backend("baseline-batched", tree,
                                  stats=stats if stats is not None
                                  else SearchStats())

    @property
    def stats(self):
        return self._inner.stats

    def radius_search(self, queries, radius):
        result = self._inner.radius_search(queries, radius)
        n = result.point_indices.shape[0]
        if n == 0:
            return result
        return BatchRadiusResult(offsets=np.minimum(result.offsets, n - 1),
                                 point_indices=result.point_indices[:n - 1])

    def knn(self, queries, k):
        return self._inner.knn(queries, k)

    def search(self, query, radius):
        return self._inner.search(query, radius)


@pytest.fixture()
def broken_backend():
    register_backend("broken-batched",
                     lambda tree, **opts: _BrokenBatchedBackend(tree, **opts))
    yield "broken-batched"
    _BACKEND_REGISTRY.pop("broken-batched")


class TestBrokenBackendCaught:
    def test_campaign_catches_and_shrinks_the_divergence(self, tmp_path,
                                                         broken_backend):
        config = CampaignConfig(
            budget=3, seed=0, backends=("baseline-batched", broken_backend),
            out_dir=tmp_path, recorded=False, max_shrink_evals=200)
        result = run_campaign(config)
        assert result.n_divergences > 0
        radius_hits = [d for d in result.divergences
                       if d.kind == "radius-hits"]
        assert radius_hits, "dropped radius hit must surface as radius-hits"

        shrunk = [d for d in radius_hits if d.shrunk is not None]
        assert shrunk, "at least one radius divergence must shrink"
        smallest = min(shrunk, key=lambda d: d.shrunk["n_points"])
        # ddmin must get a single dropped hit down to a handful of rows.
        assert smallest.shrunk["n_points"] <= 8
        assert smallest.shrunk["n_queries"] <= 8
        assert smallest.shrunk["evals_used"] <= 200

        # The manifest records the divergence and the reproducer exists.
        manifest = json.loads(result.manifest_path.read_text())
        assert manifest["n_divergences"] == result.n_divergences
        reproducer = result.result_dir / smallest.reproducer
        assert reproducer.exists()
        report = result.result_dir / f"divergence-trial{smallest.trial}.json"
        assert report.exists()

    def test_generated_reproducer_actually_fails(self, tmp_path,
                                                 broken_backend):
        config = CampaignConfig(
            budget=3, seed=0, backends=("baseline-batched", broken_backend),
            out_dir=tmp_path, recorded=False)
        result = run_campaign(config)
        shrunk = [d for d in result.divergences
                  if d.kind == "radius-hits" and d.reproducer is not None]
        assert shrunk
        source = (result.result_dir / shrunk[0].reproducer).read_text()
        namespace: dict = {}
        exec(compile(source, shrunk[0].reproducer, "exec"), namespace)
        test_functions = [value for name, value in namespace.items()
                          if name.startswith("test_") and callable(value)]
        assert len(test_functions) == 1
        with pytest.raises(AssertionError):
            test_functions[0]()

    def test_clean_pair_reports_nothing(self, tmp_path):
        config = CampaignConfig(
            budget=2, seed=1,
            backends=("baseline-batched", "baseline-perquery"),
            out_dir=tmp_path, recorded=False)
        result = run_campaign(config)
        assert result.n_divergences == 0
        assert not list(result.result_dir.glob("divergence-*.json"))
        assert not list(result.result_dir.glob("repro_*.py"))


class TestServiceOps:
    """The ``service`` op flavor: shared-store attach diffed vs reference.

    Campaign seed 3's first world samples exactly one op — a service op —
    so ``budget=1, seed=3`` isolates the service-routed diff path.
    """

    SERVICE_SEED = 3  # random_world(3 * TRIAL_SEED_STRIDE) -> [service]

    def test_service_world_is_sampled(self):
        from repro.campaign.driver import TRIAL_SEED_STRIDE

        world = random_world(self.SERVICE_SEED * TRIAL_SEED_STRIDE)
        assert [op.kind for op in world.ops] == ["service"]
        assert "service(" in world.ops[0].describe()

    def test_service_ops_are_clean_over_real_backends(self, tmp_path):
        config = CampaignConfig(
            budget=1, seed=self.SERVICE_SEED, out_dir=tmp_path,
            recorded=False)
        result = run_campaign(config)
        assert result.n_divergences == 0
        # The trial record proves the service op actually ran.
        assert any(op["kind"] == "service"
                   for trial in result.trials
                   for op in trial["world"]["ops"])

    def test_broken_backend_caught_through_the_service_route(
            self, tmp_path, broken_backend):
        config = CampaignConfig(
            budget=1, seed=self.SERVICE_SEED,
            backends=("baseline-batched", broken_backend),
            out_dir=tmp_path, recorded=False, max_shrink_evals=200)
        result = run_campaign(config)
        service_hits = [d for d in result.divergences
                        if d.kind == "service-hits"]
        assert service_hits, "dropped hit must surface via the service route"
        divergence = service_hits[0]
        # The left side names the service routing, not a bare backend.
        assert divergence.left == f"service:{broken_backend}"
        assert divergence.right == "baseline-batched"
        # kNN delegates to the real backend, so only radius diverges.
        assert not [d for d in result.divergences if d.kind == "service-knn"]

        # The divergence shrinks to a handful of rows like any other.
        shrunk = [d for d in service_hits if d.shrunk is not None]
        assert shrunk, "service divergence must shrink"
        smallest = min(shrunk, key=lambda d: d.shrunk["n_points"])
        assert smallest.shrunk["n_points"] <= 8
        assert smallest.shrunk["n_queries"] <= 8
        reproducer = result.result_dir / smallest.reproducer
        assert reproducer.exists()
        source = reproducer.read_text()
        assert "SharedCloudStore" in source

    def test_service_reproducer_actually_fails(self, tmp_path,
                                               broken_backend):
        config = CampaignConfig(
            budget=1, seed=self.SERVICE_SEED,
            backends=("baseline-batched", broken_backend),
            out_dir=tmp_path, recorded=False)
        result = run_campaign(config)
        shrunk = [d for d in result.divergences
                  if d.kind == "service-hits" and d.reproducer is not None]
        assert shrunk
        source = (result.result_dir / shrunk[0].reproducer).read_text()
        namespace: dict = {}
        exec(compile(source, shrunk[0].reproducer, "exec"), namespace)
        test_functions = [value for name, value in namespace.items()
                          if name.startswith("test_") and callable(value)]
        assert len(test_functions) == 1
        with pytest.raises(AssertionError):
            test_functions[0]()
