"""Determinism contract of the city-scale sharded index.

``ShardedPointCloudIndex`` promises results **bitwise identical** to the
unsharded ``PointCloudIndex`` over the same cloud — whatever the tiling,
chunking or per-tile backend (kNN up to k-th-place distance ties; the fuzz
uses continuous random coordinates, where ties do not occur).  This file
locks that promise down across every registered backend, plus the edge
cases the grid introduces: queries landing in zero tiles, empty batches,
empty clouds, ``k`` larger than the cloud, lazy tile building and the
merged per-tile statistics.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.engine import PointCloudIndex, ShardedPointCloudIndex, backend_names
from repro.engine.sharded import DEFAULT_TILE_SIZE

RADIUS = 2.5
K = 8


@pytest.fixture(scope="module")
def cloud():
    """A multi-tile cloud: clustered structure plus uniform fill."""
    rng = np.random.default_rng(42)
    centers = rng.uniform(-90.0, 90.0, (40, 3))
    centers[:, 2] = rng.uniform(-1.0, 3.0, 40)
    clustered = (centers[:, None, :]
                 + rng.normal(0.0, 1.2, (40, 120, 3))).reshape(-1, 3)
    uniform = rng.uniform(-100.0, 100.0, (3000, 3))
    uniform[:, 2] = rng.uniform(-1.0, 6.0, 3000)
    return np.vstack([clustered, uniform]).astype(np.float32)


@pytest.fixture(scope="module")
def queries(cloud):
    """Fuzzed queries: near points, between clusters, and far outside."""
    rng = np.random.default_rng(7)
    near = (cloud[rng.integers(0, len(cloud), 150)].astype(np.float64)
            + rng.normal(0.0, 0.8, (150, 3)))
    roaming = rng.uniform(-110.0, 110.0, (80, 3))
    far = rng.uniform(400.0, 500.0, (10, 3))  # land in zero tiles
    return np.vstack([near, roaming, far])


@pytest.fixture(scope="module")
def sharded(cloud):
    return ShardedPointCloudIndex(cloud, tile_size=40.0, chunk_queries=64)


@pytest.fixture(scope="module")
def flat(cloud):
    return PointCloudIndex(cloud)


# ----------------------------------------------------------------------
# Bitwise parity with the unsharded index, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", backend_names())
class TestParity:
    def test_radius_bitwise_identical(self, sharded, flat, backend, queries):
        got = sharded.radius_search(queries, RADIUS, backend=backend)
        want = flat.radius_search(queries, RADIUS)
        assert got.offsets.dtype == want.offsets.dtype
        assert np.array_equal(got.offsets, want.offsets)
        assert np.array_equal(got.point_indices, want.point_indices)

    def test_knn_bitwise_identical(self, sharded, flat, backend, queries):
        got = sharded.knn(queries, K, backend=backend)
        want = flat.knn(queries, K)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.distances, want.distances)


def test_parity_is_tiling_invariant(cloud, flat, queries):
    """Different tile sizes and chunkings cannot change a single bit."""
    want_r = flat.radius_search(queries, RADIUS)
    want_k = flat.knn(queries, K)
    for tile_size, chunk in ((13.0, 7), (DEFAULT_TILE_SIZE, 2048), (500.0, 64)):
        index = ShardedPointCloudIndex(cloud, tile_size=tile_size,
                                       chunk_queries=chunk)
        got_r = index.radius_search(queries, RADIUS)
        assert np.array_equal(got_r.offsets, want_r.offsets)
        assert np.array_equal(got_r.point_indices, want_r.point_indices)
        got_k = index.knn(queries, K)
        assert np.array_equal(got_k.indices, want_k.indices)
        assert np.array_equal(got_k.distances, want_k.distances)
    # A 500 m tile degenerates to one cell per quadrant (grid cells are
    # anchored at the origin): few huge tiles, still bitwise identical.
    assert index.n_tiles <= 4


# ----------------------------------------------------------------------
# Grid edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_zero_tile_queries_return_empty_rows(self, sharded):
        """A query whose sphere misses every tile bbox yields an empty,
        well-formed row — no tile is consulted, nothing crashes."""
        lost = np.array([[1000.0, 1000.0, 1000.0],
                         [-900.0, 950.0, -40.0]])
        result = sharded.radius_search(lost, RADIUS)
        assert result.n_queries == 2
        assert result.total_matches == 0
        assert np.array_equal(result.offsets, np.zeros(3, dtype=result.offsets.dtype))
        # kNN still finds the globally nearest points (no radius to prune by).
        knn = sharded.knn(lost, 3)
        assert (knn.indices >= 0).all()
        assert np.isfinite(knn.distances).all()

    def test_empty_batch(self, sharded):
        empty = np.empty((0, 3))
        result = sharded.radius_search(empty, RADIUS)
        assert result.n_queries == 0
        assert result.offsets.shape == (1,) and result.offsets[0] == 0
        assert result.point_indices.shape == (0,)
        knn = sharded.knn(empty, K)
        assert knn.indices.shape == (0, K)
        assert knn.distances.shape == (0, K)

    def test_empty_cloud(self):
        """Zero points is legal here (unlike the unsharded tree build)."""
        index = ShardedPointCloudIndex(np.empty((0, 3), dtype=np.float32))
        assert index.n_points == 0 and index.n_tiles == 0
        result = index.radius_search(np.zeros((4, 3)), RADIUS)
        assert result.n_queries == 4 and result.total_matches == 0
        knn = index.knn(np.zeros((4, 3)), K)
        assert knn.indices.shape == (4, 0)  # width = min(k, 0)

    def test_k_exceeding_n_points(self, flat):
        rng = np.random.default_rng(5)
        small = rng.uniform(-50.0, 50.0, (37, 3)).astype(np.float32)
        index = ShardedPointCloudIndex(small, tile_size=20.0)
        want = PointCloudIndex(small).knn(small[:5].astype(np.float64), 50)
        got = index.knn(small[:5].astype(np.float64), 50)
        assert got.indices.shape == (5, 37)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.distances, want.distances)

    def test_single_query_search(self, sharded, flat, cloud):
        """`search` is index-sorted (CSR row order), unlike the per-query
        backends' native traversal order — same hit set either way."""
        query = cloud[11].astype(np.float64)
        got = sharded.search(query, RADIUS)
        assert got == flat.radius_search(query[None, :], RADIUS) \
            .indices_for(0).tolist()
        assert got == sorted(
            flat.backend("baseline-perquery").search(query, RADIUS))

    def test_invalid_arguments(self, sharded, cloud):
        with pytest.raises(ValueError):
            ShardedPointCloudIndex(cloud, tile_size=0.0)
        with pytest.raises(ValueError):
            ShardedPointCloudIndex(cloud, chunk_queries=0)
        with pytest.raises(ValueError):
            ShardedPointCloudIndex(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            sharded.radius_search(np.zeros((1, 3)), 0.0)
        with pytest.raises(ValueError):
            sharded.knn(np.zeros((1, 3)), 0)


# ----------------------------------------------------------------------
# Lazy building, teardown, statistics
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_tiles_build_lazily(self, cloud):
        index = ShardedPointCloudIndex(cloud, tile_size=40.0)
        assert index.n_built_tiles == 0
        assert index.built_tile_indexes() == []
        # One concentrated query touches only the tiles near it.
        index.radius_search(cloud[:1].astype(np.float64), RADIUS)
        assert 0 < index.n_built_tiles < index.n_tiles
        built = index.built_tile_indexes()
        assert len(built) == index.n_built_tiles
        assert all(isinstance(tile, int) and idx is not None
                   for tile, idx in built)
        index.build_all()
        assert index.n_built_tiles == index.n_tiles

    def test_partition_is_exhaustive_and_disjoint(self, sharded, cloud):
        counts = sharded.tile_counts
        assert counts.sum() == sharded.n_points == len(cloud)
        assert (counts > 0).all()  # only non-empty tiles exist
        assert sharded.tile_cells.shape == (sharded.n_tiles, 2)
        seen = np.concatenate(
            [sharded._tile_point_indices[t] for t in range(sharded.n_tiles)])
        assert np.array_equal(np.sort(seen), np.arange(len(cloud)))
        for tile in range(sharded.n_tiles):
            lo, hi = sharded.tile_bounds(tile)
            pts = cloud[sharded._tile_point_indices[tile]].astype(np.float64)
            assert (pts >= lo - 1e-9).all() and (pts <= hi + 1e-9).all()

    def test_merged_search_and_bonsai_stats(self, cloud, queries):
        index = ShardedPointCloudIndex(cloud, tile_size=40.0)
        assert index.bonsai_stats is None  # no Bonsai backend touched yet
        index.radius_search(queries, RADIUS, backend="bonsai-batched")
        stats = index.search_stats
        assert stats.queries > 0 and stats.leaves_visited > 0
        bonsai = index.bonsai_stats
        assert bonsai is not None and bonsai.leaf_visits > 0
        # The merged view equals the sum over the built tiles.
        total = sum(idx.search_stats.leaves_visited
                    for _, idx in index.built_tile_indexes())
        assert stats.leaves_visited == total

    def test_recorded_mode_merges_hierarchy_stats(self, cloud, queries):
        from repro.analysis import GEOMETRIES

        index = ShardedPointCloudIndex(cloud, tile_size=40.0)
        assert index.hierarchy_stats is None
        cpu = GEOMETRIES["l2-256k"].cpu()
        got = index.radius_search(queries[:60], RADIUS,
                                  backend="bonsai-perquery", recorded=True,
                                  cpu=cpu)
        want = PointCloudIndex(cloud).radius_search(queries[:60], RADIUS)
        assert np.array_equal(got.point_indices, want.point_indices)
        merged = index.hierarchy_stats
        assert merged is not None
        assert merged.loads > 0 and merged.bytes_loaded > 0
        per_tile = [idx.backend("bonsai-perquery", recorded=True,
                                cpu=cpu).hierarchy
                    for _, idx in index.built_tile_indexes()]
        assert merged.l1_misses == sum(h.l1_misses for h in per_tile)

    def test_close_is_idempotent_and_recoverable(self, cloud, queries):
        index = ShardedPointCloudIndex(cloud, tile_size=40.0)
        want = index.radius_search(queries[:40], RADIUS,
                                   backend="baseline-batched-mp")
        index.close()
        index.close()
        again = index.radius_search(queries[:40], RADIUS,
                                    backend="baseline-batched-mp")
        assert np.array_equal(again.point_indices, want.point_indices)
        index.close()


# ----------------------------------------------------------------------
# The acceptance-scale run (tier-2: pytest -m slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_million_point_map_parity():
    """1M-point map cloud: sharded build + fuzzed bitwise parity."""
    from repro.scenarios import build_map_cloud

    cloud = build_map_cloud("city_block", 1_000_000, seed=3)
    index = ShardedPointCloudIndex(cloud)
    assert index.n_points == 1_000_000
    assert index.n_tiles > 10

    rng = np.random.default_rng(17)
    pts = index.points
    queries = (pts[rng.integers(0, len(pts), 192)].astype(np.float64)
               + rng.normal(0.0, 1.0, (192, 3)))
    flat = PointCloudIndex(pts)
    try:
        for backend in ("baseline-batched", "bonsai-batched"):
            got = index.radius_search(queries, 2.0, backend=backend)
            want = flat.radius_search(queries, 2.0)
            assert np.array_equal(got.offsets, want.offsets)
            assert np.array_equal(got.point_indices, want.point_indices)
        got_k = index.knn(queries, 5)
        want_k = flat.knn(queries, 5)
        assert np.array_equal(got_k.indices, want_k.indices)
        assert np.array_equal(got_k.distances, want_k.distances)
        # Lazy build really paid off: the fuzz only touched some tiles.
        assert index.n_built_tiles < index.n_tiles
    finally:
        index.close()
        flat.close()
