"""Shared fixtures for the test suite.

Fixtures are session scoped where the underlying objects are immutable and
expensive to build (synthetic LiDAR frames, k-d trees), so the several hundred
tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kdtree import KDTreeConfig, build_kdtree
from repro.pointcloud import (
    LidarConfig,
    PointCloud,
    SceneConfig,
    SequenceConfig,
    DrivingSequence,
    preprocess_for_clustering,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden-metric snapshots under tests/golden/ "
             "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def rng():
    """Deterministic random generator shared across tests."""
    return np.random.default_rng(20230)


@pytest.fixture(scope="session")
def small_sequence():
    """A small synthetic driving sequence (coarse LiDAR, few frames)."""
    config = SequenceConfig(
        n_frames=4,
        scene=SceneConfig(seed=11),
        lidar=LidarConfig(n_beams=24, n_azimuth_steps=240, seed=99),
    )
    return DrivingSequence(config)


@pytest.fixture(scope="session")
def lidar_frame(small_sequence):
    """One raw synthetic LiDAR frame."""
    return small_sequence.frame(0)


@pytest.fixture(scope="session")
def filtered_frame(lidar_frame):
    """The same frame after the Autoware-style pre-processing chain."""
    return preprocess_for_clustering(lidar_frame)


@pytest.fixture(scope="session")
def frame_tree(filtered_frame):
    """A k-d tree built over the pre-processed frame (PCL defaults)."""
    return build_kdtree(filtered_frame)


@pytest.fixture(scope="session")
def random_cloud(rng):
    """A random but spatially clustered point cloud (no LiDAR structure)."""
    centers = rng.uniform(-40.0, 40.0, size=(30, 3))
    centers[:, 2] = rng.uniform(-1.5, 2.0, size=30)
    points = []
    for center in centers:
        points.append(center + rng.normal(0.0, 0.4, size=(40, 3)))
    return PointCloud(np.vstack(points).astype(np.float32))


@pytest.fixture(scope="session")
def random_tree(random_cloud):
    """A k-d tree over the random clustered cloud."""
    return build_kdtree(random_cloud, KDTreeConfig(max_leaf_size=15))
