"""Tests of the MSB-first bit writer/reader."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.to_bytes() == b""

    def test_single_bit(self):
        writer = BitWriter()
        writer.write(1, 1)
        assert writer.bit_length == 1
        assert writer.to_bytes() == b"\x80"

    def test_byte_value(self):
        writer = BitWriter()
        writer.write(0xAB, 8)
        assert writer.to_bytes() == b"\xab"

    def test_cross_byte_value(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b11111, 5)
        writer.write(0b1, 1)
        assert writer.to_bytes()[0] == 0b10111111
        assert writer.to_bytes()[1] == 0b10000000

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(-1, 4)

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    def test_padding_to_slice(self):
        writer = BitWriter()
        writer.write(1, 1)
        data = writer.to_bytes(pad_to=16)
        assert len(data) == 16

    def test_padding_exact_multiple_unchanged(self):
        writer = BitWriter()
        for _ in range(16):
            writer.write(0xFF, 8)
        assert len(writer.to_bytes(pad_to=16)) == 16

    def test_invalid_pad_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().to_bytes(pad_to=0)


class TestBitReader:
    def test_read_back_simple(self):
        reader = BitReader(b"\xab")
        assert reader.read(8) == 0xAB

    def test_read_across_bytes(self):
        reader = BitReader(b"\xab\xcd")
        assert reader.read(4) == 0xA
        assert reader.read(8) == 0xBC
        assert reader.read(4) == 0xD

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read(5)
        assert reader.bits_remaining == 11

    def test_read_past_end_rejected(self):
        reader = BitReader(b"\x00")
        with pytest.raises(ValueError):
            reader.read(9)

    def test_zero_width_read(self):
        assert BitReader(b"").read(0) == 0


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=24),
                              st.integers(min_value=0)),
                    min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_field_sequences_roundtrip(self, fields):
        fields = [(width, value % (1 << width)) for width, value in fields]
        writer = BitWriter()
        for width, value in fields:
            writer.write(value, width)
        reader = BitReader(writer.to_bytes())
        for width, value in fields:
            assert reader.read(width) == value

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_bytes_roundtrip(self, data):
        writer = BitWriter()
        for byte in data:
            writer.write(byte, 8)
        assert writer.to_bytes() == data
