"""Bitwise-parity tests of the streaming pipeline runner.

The :class:`~repro.serve.streaming.StreamingPipelineRunner` overlaps frame
generation and clustering across a bounded stage queue; the contract is that
``metrics()`` stays **bitwise identical** to the serial
:class:`~repro.workloads.pipeline.PipelineRunner` for any worker count, any
queue depth and any stage completion order.  These tests sweep every
registered scenario, force pathological (fully inverted) completion orders
through the ``stage_delay`` hook, and fuzz seeded configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import scenario_names
from repro.serve import StreamingPipelineRunner
from repro.workloads import PipelineRunner


def _serial_metrics(scenario: str, n_frames: int, seed: int) -> dict:
    return PipelineRunner.from_scenario(
        scenario, n_frames=n_frames, seed=seed).run().metrics()


def _streaming_metrics(scenario: str, n_frames: int, seed: int, *,
                       stage_workers: int, queue_depth=None,
                       stage_delay=None, backend=None) -> dict:
    runner = StreamingPipelineRunner.from_scenario(
        scenario, n_frames=n_frames, seed=seed, backend=backend)
    runner.stage_workers = stage_workers
    runner.queue_depth = queue_depth
    runner.stage_delay = stage_delay
    return runner.run().metrics()


# ----------------------------------------------------------------------
# Every registered scenario, bitwise
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", scenario_names())
def test_streaming_matches_serial_on_every_scenario(scenario):
    """The tentpole acceptance: all registered scenarios, bitwise."""
    serial = _serial_metrics(scenario, n_frames=3, seed=5)
    streaming = _streaming_metrics(scenario, n_frames=3, seed=5,
                                   stage_workers=2)
    assert streaming == serial


# ----------------------------------------------------------------------
# Worker counts and queue depths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stage_workers", [1, 2, 4])
def test_worker_count_never_changes_metrics(stage_workers):
    serial = _serial_metrics("urban", n_frames=5, seed=2)
    streaming = _streaming_metrics("urban", n_frames=5, seed=2,
                                   stage_workers=stage_workers)
    assert streaming == serial


@pytest.mark.parametrize("queue_depth", [1, 2, 7])
def test_queue_depth_is_backpressure_not_correctness(queue_depth):
    serial = _serial_metrics("highway", n_frames=4, seed=3)
    streaming = _streaming_metrics("highway", n_frames=4, seed=3,
                                   stage_workers=2, queue_depth=queue_depth)
    assert streaming == serial


def test_streaming_with_bonsai_backend():
    serial = PipelineRunner.from_scenario(
        "urban", n_frames=3, seed=4, backend="bonsai-batched").run().metrics()
    streaming = _streaming_metrics("urban", n_frames=3, seed=4,
                                   stage_workers=2, backend="bonsai-batched")
    assert streaming == serial


# ----------------------------------------------------------------------
# Adversarial completion orders
# ----------------------------------------------------------------------
def test_inverted_completion_order_is_folded_in_frame_order():
    """Later frames finish first; the fold must still run 0,1,2,..."""
    n_frames = 5
    serial = _serial_metrics("urban", n_frames=n_frames, seed=2)
    streaming = _streaming_metrics(
        "urban", n_frames=n_frames, seed=2, stage_workers=4,
        stage_delay=lambda position: (n_frames - position) * 0.02)
    assert streaming == serial


def test_random_completion_jitter():
    rng = np.random.default_rng(77)
    delays = rng.uniform(0.0, 0.03, 6)
    serial = _serial_metrics("tunnel", n_frames=6, seed=9)
    streaming = _streaming_metrics(
        "tunnel", n_frames=6, seed=9, stage_workers=3,
        stage_delay=lambda position: float(delays[position]))
    assert streaming == serial


def test_stage_failure_propagates():
    runner = StreamingPipelineRunner.from_scenario("urban", n_frames=4,
                                                   seed=1)
    runner.stage_workers = 2

    def explode(position):
        if position == 2:
            raise RuntimeError("stage blew up")
        return 0.0

    runner.stage_delay = explode
    with pytest.raises(RuntimeError, match="stage blew up"):
        runner.run()


def test_invalid_worker_count_rejected():
    sequence = PipelineRunner.from_scenario("urban", n_frames=2,
                                            seed=1).sequence
    with pytest.raises(ValueError):
        StreamingPipelineRunner(sequence, stage_workers=0)


# ----------------------------------------------------------------------
# Fuzzed configurations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fuzz_seed", range(4))
def test_fuzzed_scenarios_bitwise(fuzz_seed):
    """Random (scenario, frames, seed, workers, depth, delays) cases."""
    rng = np.random.default_rng(1000 + fuzz_seed)
    names = scenario_names()
    scenario = names[int(rng.integers(0, len(names)))]
    n_frames = int(rng.integers(2, 6))
    seed = int(rng.integers(0, 1000))
    stage_workers = int(rng.integers(1, 5))
    queue_depth = int(rng.integers(1, 2 * stage_workers + 2))
    delays = rng.uniform(0.0, 0.02, n_frames)

    serial = _serial_metrics(scenario, n_frames=n_frames, seed=seed)
    streaming = _streaming_metrics(
        scenario, n_frames=n_frames, seed=seed, stage_workers=stage_workers,
        queue_depth=queue_depth,
        stage_delay=lambda position: float(delays[position]))
    assert streaming == serial, (scenario, n_frames, seed, stage_workers,
                                 queue_depth)
