"""Randomized cross-backend parity: every named backend, one truth.

The engine layer's core contract is that execution mode never changes
results: the four registered backends must return *identical* radius hits
and kNN neighbours for the same tree and queries, and wrapping any backend
in the hardware recorder must leave the functional results bitwise
unchanged while the cache trace fills.

These tests fuzz that contract: seeded random clustered clouds plus
scenario-derived frames, perturbed query sets, random radius/k — compared
across every name in the registry (the suite never imports a concrete
backend class, so a newly registered backend is automatically swept).
The CI ``backend-parity`` step runs exactly this file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ExecutionConfig, PointCloudIndex, backend_names, get_backend, recorded
from repro.kdtree import SearchStats, build_kdtree
from repro.pointcloud import PointCloud, preprocess_for_clustering
from repro.scenarios import build_sequence

REFERENCE = "baseline-batched"


def _fuzzed_cloud(seed: int) -> PointCloud:
    """A random but spatially clustered cloud (no LiDAR structure)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-30.0, 30.0, size=(rng.integers(8, 24), 3))
    centers[:, 2] = rng.uniform(-1.0, 2.0, size=centers.shape[0])
    blobs = [center + rng.normal(0.0, rng.uniform(0.2, 0.8), size=(rng.integers(10, 60), 3))
             for center in centers]
    return PointCloud(np.vstack(blobs).astype(np.float32))


def _fuzzed_case(seed: int):
    """Deterministic (points, queries, radius, k) drawn from ``seed``."""
    cloud = _fuzzed_cloud(seed)
    rng = np.random.default_rng(seed * 6151 + 5)
    base = cloud.points[rng.integers(0, len(cloud), 60)]
    queries = base.astype(np.float64) + rng.normal(0.0, 0.5, base.shape)
    radius = float(rng.uniform(0.3, 1.5))
    k = int(rng.integers(1, 9))
    return cloud, queries, radius, k


def _scenario_case(scenario: str, seed: int):
    """A case over a real preprocessed LiDAR frame of a registered world."""
    sequence = build_sequence(scenario, n_frames=2, seed=seed,
                              n_beams=14, n_azimuth_steps=120)
    cloud = preprocess_for_clustering(sequence.frame(1))
    rng = np.random.default_rng(seed * 7919 + 13)
    base = cloud.points[rng.integers(0, len(cloud), 60)]
    queries = base.astype(np.float64) + rng.normal(0.0, 0.4, base.shape)
    return cloud, queries, float(rng.uniform(0.3, 1.2)), int(rng.integers(1, 8))


CASES = {
    "fuzz-seed2": lambda: _fuzzed_case(2),
    "fuzz-seed17": lambda: _fuzzed_case(17),
    "urban-frame": lambda: _scenario_case("urban", 3),
    "warehouse-frame": lambda: _scenario_case("warehouse_indoor", 11),
}


@pytest.fixture(scope="module", params=sorted(CASES), ids=sorted(CASES))
def case(request):
    cloud, queries, radius, k = CASES[request.param]()
    return build_kdtree(cloud), queries, radius, k


def _radius_arrays(backend, queries, radius):
    result = backend.radius_search(queries, radius)
    return result.offsets, result.point_indices


class TestCrossBackendParity:
    """All registered backends agree bit-for-bit on every fuzzed case."""

    def test_radius_hits_identical_across_backends(self, case):
        tree, queries, radius, _ = case
        ref_offsets, ref_indices = _radius_arrays(
            get_backend(REFERENCE, tree), queries, radius)
        for name in backend_names():
            offsets, indices = _radius_arrays(
                get_backend(name, tree), queries, radius)
            assert np.array_equal(offsets, ref_offsets), name
            assert np.array_equal(indices, ref_indices), name

    def test_knn_neighbors_identical_across_backends(self, case):
        tree, queries, _, k = case
        reference = get_backend(REFERENCE, tree).knn(queries, k)
        for name in backend_names():
            result = get_backend(name, tree).knn(queries, k)
            assert np.array_equal(result.indices, reference.indices), name
            assert np.allclose(result.distances, reference.distances,
                               rtol=0, atol=0, equal_nan=True), name

    def test_radius_stats_aggregate_identically(self, case):
        """Every backend charges the same functional search counters."""
        tree, queries, radius, _ = case
        reference = SearchStats()
        get_backend(REFERENCE, tree,
                    stats=reference).radius_search(queries, radius)
        for name in backend_names():
            stats = SearchStats()
            get_backend(name, tree, stats=stats).radius_search(queries, radius)
            assert (stats.queries, stats.leaves_visited, stats.interior_visited,
                    stats.points_examined, stats.points_in_radius) == \
                   (reference.queries, reference.leaves_visited,
                    reference.interior_visited, reference.points_examined,
                    reference.points_in_radius), name
            assert stats.leaf_visit_counts == reference.leaf_visit_counts, name

    def test_single_query_hits_match_batched(self, case):
        """``search()`` returns the same set the batched result holds."""
        tree, queries, radius, _ = case
        for name in backend_names():
            backend = get_backend(name, tree)
            batched = backend.radius_search(queries[:10], radius)
            for q in range(10):
                assert sorted(backend.search(queries[q], radius)) == \
                    batched.indices_for(q).tolist(), (name, q)


class TestRecordedParity:
    """The hardware wrapper must never change functional results."""

    def test_recorded_radius_bitwise_unchanged(self, case):
        tree, queries, radius, _ = case
        for name in backend_names():
            plain = get_backend(name, tree)
            ref_offsets, ref_indices = _radius_arrays(plain, queries, radius)
            wrapped = recorded(plain)
            offsets, indices = _radius_arrays(wrapped, queries, radius)
            assert np.array_equal(offsets, ref_offsets), name
            assert np.array_equal(indices, ref_indices), name
            # And the trace is live: the searches really hit the cache model.
            assert wrapped.hierarchy is not None, name
            assert wrapped.hierarchy.l1_accesses > 0, name

    def test_execution_config_hardware_bitwise_unchanged(self, case):
        """`ExecutionConfig(hardware=True)` is the same guarantee as data."""
        tree, queries, radius, _ = case
        for name in backend_names():
            functional = ExecutionConfig(backend=name)
            hardware = ExecutionConfig(backend=name, hardware=True)
            ref = functional.make_backend(tree).radius_search(queries, radius)
            recorded_backend = hardware.make_backend(tree)
            got = recorded_backend.radius_search(queries, radius)
            assert np.array_equal(got.offsets, ref.offsets), name
            assert np.array_equal(got.point_indices, ref.point_indices), name
            assert recorded_backend.hierarchy.l1_accesses > 0, name


class TestIndexParity:
    """The facade serves every backend from one tree with merged stats."""

    def test_index_serves_all_backends_identically(self, case):
        tree, queries, radius, k = case
        index = PointCloudIndex(tree)
        reference = index.radius_search(queries, radius, backend=REFERENCE)
        knn_reference = index.knn(queries, k, backend=REFERENCE)
        for name in backend_names():
            result = index.radius_search(queries, radius, backend=name)
            assert np.array_equal(result.point_indices,
                                  reference.point_indices), name
            knn = index.knn(queries, k, backend=name)
            assert np.array_equal(knn.indices, knn_reference.indices), name
        # Stats merged across every served backend: radius + knn queries each.
        n_backends = len(backend_names())
        assert index.search_stats.queries >= 2 * n_backends * len(queries)

    def test_index_compresses_lazily_exactly_once(self, case):
        tree, queries, radius, _ = case
        index = PointCloudIndex(build_kdtree(tree.points))
        assert not index.is_compressed
        index.radius_search(queries, radius)  # baseline: no compression
        assert not index.is_compressed and index.compression_report is None
        index.radius_search(queries, radius, backend="bonsai-batched")
        assert index.is_compressed
        report = index.compression_report
        assert report is not None and report.compressed_bytes > 0
        index.radius_search(queries, radius, backend="bonsai-perquery")
        assert index.compression_report is report  # not recompressed
