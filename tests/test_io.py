"""Tests of point cloud serialisation (NPZ and ASCII PCD)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import PointCloud, load_npz, load_pcd, save_npz, save_pcd


class TestNpz:
    def test_roundtrip(self, tmp_path):
        cloud = PointCloud([[1.5, -2.25, 3.0], [0.0, 0.0, 0.0]],
                           frame_id="velodyne", timestamp=2.5)
        path = tmp_path / "cloud.npz"
        save_npz(path, cloud)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.points, cloud.points)
        assert loaded.frame_id == "velodyne"
        assert loaded.timestamp == 2.5

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_npz(path, PointCloud())
        assert len(load_npz(path)) == 0

    def test_roundtrip_lidar_frame(self, tmp_path, lidar_frame):
        path = tmp_path / "frame.npz"
        save_npz(path, lidar_frame)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.points, lidar_frame.points)


class TestPcd:
    def test_roundtrip(self, tmp_path):
        cloud = PointCloud([[1.5, -2.25, 3.0], [10.0, 20.0, -30.0]])
        path = tmp_path / "cloud.pcd"
        save_pcd(path, cloud)
        loaded = load_pcd(path)
        np.testing.assert_allclose(loaded.points, cloud.points, atol=1e-5)

    def test_header_fields(self, tmp_path):
        path = tmp_path / "cloud.pcd"
        save_pcd(path, PointCloud([[1, 2, 3]]))
        text = path.read_text()
        assert "FIELDS x y z" in text
        assert "POINTS 1" in text
        assert "DATA ascii" in text

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.pcd"
        path.write_text("VERSION 0.7\nFIELDS a b\nPOINTS 0\nDATA ascii\n")
        with pytest.raises(ValueError):
            load_pcd(path)

    def test_load_rejects_binary(self, tmp_path):
        path = tmp_path / "bad.pcd"
        path.write_text("FIELDS x y z\nPOINTS 0\nDATA binary\n")
        with pytest.raises(ValueError):
            load_pcd(path)

    def test_load_rejects_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.pcd"
        path.write_text("FIELDS x y z\nPOINTS 2\nDATA ascii\n1 2 3\n")
        with pytest.raises(ValueError):
            load_pcd(path)

    def test_load_with_extra_fields(self, tmp_path):
        path = tmp_path / "rgb.pcd"
        path.write_text(
            "FIELDS x y z intensity\nPOINTS 1\nDATA ascii\n1.0 2.0 3.0 0.5\n"
        )
        loaded = load_pcd(path)
        np.testing.assert_allclose(loaded.points[0], [1.0, 2.0, 3.0])

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "empty.pcd"
        save_pcd(path, PointCloud())
        assert len(load_pcd(path)) == 0
