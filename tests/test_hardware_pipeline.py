"""Tests of the hardware-in-the-loop pipeline mode and its building blocks.

The golden snapshots (``test_golden_hardware.py``) pin exact values per
scenario; this file tests the machinery itself: the recorder-path NDT
matcher, the per-stage report construction, and the runner's ``hardware``
flag semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hwmodel import (
    EnergyModel,
    HierarchyRecorder,
    HierarchyStats,
    StageHardwareReport,
    TimingModel,
)
from repro.perception.ndt import NDTConfig, NDTMap, NDTMatcher
from repro.pointcloud.filters import voxel_grid_filter
from repro.workloads import ExecutionConfig, PipelineRunner, PipelineRunnerConfig

PRESET = dict(n_frames=3, seed=7, n_beams=14, n_azimuth_steps=120)


@pytest.fixture(scope="module")
def ndt_map(small_sequence):
    cloud = voxel_grid_filter(small_sequence.frame(0), 0.4)
    return NDTMap(cloud, NDTConfig(voxel_size=3.0, min_points_per_voxel=2,
                                   max_scan_points=120))


class TestNDTRecorderPath:
    """The recorder-path matcher must reproduce the batched matcher exactly."""

    @pytest.mark.parametrize("use_bonsai", [False, True])
    def test_registration_identical(self, ndt_map, small_sequence, use_bonsai):
        scan = voxel_grid_filter(small_sequence.frame(1), 0.4)
        batched = NDTMatcher(ndt_map, use_bonsai=use_bonsai)
        recorded = NDTMatcher(ndt_map, use_bonsai=use_bonsai,
                              recorder=HierarchyRecorder())
        a = batched.register(scan, initial_translation=(0.3, 0.2, 0.0))
        b = recorded.register(scan, initial_translation=(0.3, 0.2, 0.0))
        assert a.iterations == b.iterations
        assert a.converged == b.converged
        # Same hits in the same (index-sorted) order => bitwise-equal floats.
        np.testing.assert_array_equal(a.translation, b.translation)
        assert a.final_score == b.final_score

    def test_search_stats_aggregate_identically(self, ndt_map, small_sequence):
        scan = voxel_grid_filter(small_sequence.frame(1), 0.4)
        batched = NDTMatcher(ndt_map)
        recorded = NDTMatcher(ndt_map, recorder=HierarchyRecorder())
        batched.register(scan)
        recorded.register(scan)
        for name in ("queries", "leaves_visited", "points_examined",
                     "points_in_radius", "point_bytes_loaded"):
            assert getattr(recorded.search_stats, name) == \
                getattr(batched.search_stats, name), name

    def test_recorder_sees_the_traffic(self, ndt_map, small_sequence):
        scan = voxel_grid_filter(small_sequence.frame(1), 0.4)
        recorder = HierarchyRecorder()
        NDTMatcher(ndt_map, recorder=recorder).register(scan)
        assert recorder.stats.loads > 0
        assert recorder.stats.l1_accesses > 0
        assert recorder.stats.bytes_loaded > 0


class TestStageHardwareReport:
    def test_from_trace_and_ratios(self):
        stats = HierarchyStats(l1_accesses=100, l1_misses=10, l2_accesses=10,
                               l2_misses=4, memory_accesses=4, loads=90,
                               stores=10, bytes_loaded=900, bytes_stored=100)
        report = StageHardwareReport.from_trace(
            "stage", stats, instructions=1000,
            timing=TimingModel(), energy=EnergyModel())
        assert report.l1_miss_ratio == pytest.approx(0.1)
        assert report.l2_miss_ratio == pytest.approx(0.4)
        assert report.l2_to_l1_bytes == 10 * 64
        assert report.dram_to_l2_bytes == 4 * 64
        assert report.cycles > 0 and report.seconds > 0 and report.energy_j > 0

    def test_empty_trace(self):
        report = StageHardwareReport.from_trace(
            "idle", HierarchyStats(), instructions=0,
            timing=TimingModel(), energy=EnergyModel())
        assert report.l1_miss_ratio == 0.0
        assert report.l2_miss_ratio == 0.0
        assert report.cycles == 0.0
        assert report.energy_j == 0.0

    def test_distinct_line_sizes_per_level(self):
        stats = HierarchyStats(l1_accesses=10, l1_misses=3, l2_accesses=3,
                               l2_misses=2, memory_accesses=2, loads=10,
                               bytes_loaded=100)
        report = StageHardwareReport.from_trace(
            "s", stats, 100, TimingModel(), EnergyModel(),
            l1_line_size=32, l2_line_size=128)
        assert report.l2_to_l1_bytes == 3 * 32
        assert report.dram_to_l2_bytes == 2 * 128

    def test_as_metrics_roundtrips_fields(self):
        stats = HierarchyStats(l1_accesses=2, l1_misses=1, l2_accesses=1,
                               l2_misses=1, memory_accesses=1, loads=2,
                               bytes_loaded=32)
        metrics = StageHardwareReport.from_trace(
            "s", stats, 10, TimingModel(), EnergyModel()).as_metrics()
        assert metrics["l1_accesses"] == 2
        assert metrics["l1_miss_ratio"] == 0.5
        assert metrics["dram_to_l2_bytes"] == 64


class TestHardwareRunnerFlag:
    def test_off_by_default_no_hardware_key(self):
        result = PipelineRunner.from_scenario("urban", **PRESET).run()
        assert result.hardware_stages is None
        assert "hardware" not in result.metrics()

    def test_from_scenario_hardware_override(self):
        runner = PipelineRunner.from_scenario("urban", hardware=True, **PRESET)
        assert runner.config.execution.hardware is True
        # The default config object must not have been mutated.
        assert PipelineRunnerConfig().execution.hardware is False

    def test_hardware_stage_structure(self):
        result = PipelineRunner.from_scenario("urban", hardware=True, **PRESET).run()
        assert set(result.hardware_stages) == {"clustering", "localization"}
        metrics = result.metrics()["hardware"]
        for stage in ("clustering", "localization"):
            assert metrics[stage]["l1_accesses"] > 0
            assert metrics[stage]["bytes_loaded"] > 0
        # Per-frame traces were preserved for downstream analysis.
        assert all(m.hierarchy is not None for m in result.measurements)

    def test_no_localization_no_stage(self):
        config = PipelineRunnerConfig(execution=ExecutionConfig(hardware=True),
                                      localization=False)
        result = PipelineRunner.from_scenario("urban", config=config, **PRESET).run()
        assert set(result.hardware_stages) == {"clustering"}

    def test_localization_stage_uses_its_own_machine_config(self):
        """A custom localization cache geometry must govern that stage's
        trace and line-fill conversion (not the clustering machine's)."""
        from repro.hwmodel import CacheConfig, CPUConfig
        from repro.workloads.localization import LocalizationConfig
        from repro.workloads.pipeline import _default_localization_config

        wide_l2 = CacheConfig(size_bytes=1024 * 1024, associativity=16,
                              line_size=128, name="L2")
        custom = LocalizationConfig(
            ndt=_default_localization_config().ndt,
            cpu=CPUConfig(l2=wide_l2))
        config = PipelineRunnerConfig(execution=ExecutionConfig(hardware=True),
                                      localization_config=custom)
        result = PipelineRunner.from_scenario("urban", config=config, **PRESET).run()
        loc = result.hardware_stages["localization"]
        assert loc.dram_to_l2_bytes == loc.memory_accesses * 128
        cluster = result.hardware_stages["clustering"]
        assert cluster.dram_to_l2_bytes == cluster.memory_accesses * 64

    def test_batched_mode_records_no_hierarchy(self):
        result = PipelineRunner.from_scenario("urban", **PRESET).run()
        assert all(m.hierarchy is None for m in result.measurements)
