"""Additional coverage of pipeline internals, budgets and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.boxplot import BoxPlotStats
from repro.analysis.compare import MetricComparison
from repro.analysis.reporting import render_boxplot_figure, render_table
from repro.isa import InstructionBudget
from repro.workloads import EuclideanClusterPipeline, PipelineConfig
from repro.workloads.autoware import PhaseBudget
from repro.pointcloud import DrivingSequence, LidarConfig, SceneConfig, SequenceConfig


@pytest.fixture(scope="module")
def one_frame():
    sequence = DrivingSequence(SequenceConfig(
        n_frames=1, scene=SceneConfig(seed=21),
        lidar=LidarConfig(n_beams=16, n_azimuth_steps=160, seed=210)))
    return sequence.frame(0)


class TestPipelineBudgets:
    def test_higher_budgets_increase_instruction_counts(self, one_frame):
        default = EuclideanClusterPipeline()
        inflated = EuclideanClusterPipeline(PipelineConfig(
            instruction_budget=InstructionBudget(baseline_per_point=60),
            phase_budget=PhaseBudget(build_per_point_per_level=60),
        ))
        base = default.run_frame(one_frame).extract.instructions
        big = inflated.run_frame(one_frame).extract.instructions
        assert big > base

    def test_compression_overhead_charged_to_bonsai_build(self, one_frame):
        """The Bonsai extract kernel pays the build-time compression work."""
        pipeline = EuclideanClusterPipeline()
        baseline = pipeline.run_frame(one_frame, use_bonsai=False)
        bonsai = pipeline.run_frame(one_frame, use_bonsai=True)
        phase = pipeline.config.phase_budget
        expected_overhead = (
            baseline.n_filtered_points * phase.compress_per_point
        )
        # Bonsai still wins overall, but by less than the search-only savings.
        assert bonsai.extract.instructions < baseline.extract.instructions
        assert expected_overhead > 0

    def test_empty_preprocessed_frame_rejected(self):
        from repro.pointcloud import PointCloud

        pipeline = EuclideanClusterPipeline()
        # A cloud whose points all sit on the ground plane is fully filtered out.
        ground_only = PointCloud(np.column_stack([
            np.linspace(-10, 10, 200), np.zeros(200), np.full(200, -1.8)
        ]).astype(np.float32))
        with pytest.raises(ValueError):
            pipeline.run_frame(ground_only)

    def test_measurement_is_deterministic(self, one_frame):
        pipeline = EuclideanClusterPipeline()
        first = pipeline.run_frame(one_frame, use_bonsai=True)
        second = pipeline.run_frame(one_frame, use_bonsai=True)
        assert first.extract.instructions == second.extract.instructions
        assert first.extract.l1_misses == second.extract.l1_misses
        assert first.n_clusters == second.n_clusters

    def test_end_to_end_includes_preprocess_and_labeling(self, one_frame):
        pipeline = EuclideanClusterPipeline()
        measurement = pipeline.run_frame(one_frame)
        assert measurement.end_to_end_seconds > measurement.extract.seconds
        # The extract kernel dominates (the paper attributes ~90% of the node
        # to it), so the non-kernel share must stay modest.
        other = measurement.end_to_end_seconds - measurement.extract.seconds
        assert other < measurement.extract.seconds


class TestMetricComparison:
    def test_relative_change_sign(self):
        comparison = MetricComparison(name="loads", baseline=100.0, bonsai=80.0)
        assert comparison.relative_change == pytest.approx(-0.2)

    def test_relative_change_zero_baseline(self):
        assert MetricComparison(name="x", baseline=0.0, bonsai=5.0).relative_change == 0.0


class TestRenderingEdgeCases:
    def test_render_table_handles_numbers(self):
        text = render_table(("a", "b"), [(1, 2.5), (300, "x")])
        assert "300" in text and "2.5" in text

    def test_boxplot_figure_with_identical_distributions(self):
        stats = BoxPlotStats.from_values("same", [1.0, 1.0, 1.0])
        text = render_boxplot_figure("T", stats, stats,
                                     {"mean_reduction": 0.0, "p99_reduction": 0.0,
                                      "median_reduction": 0.0})
        assert "Mean improvement: 0.00%" in text

    def test_boxplot_single_value_distribution(self):
        stats = BoxPlotStats.from_values("x", [2.0])
        assert stats.mean == 2.0
        assert stats.p99 == 2.0
