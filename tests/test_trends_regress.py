"""Property tests for the trend regression detector (hypothesis).

Three laws, each over generated histories:

* **soundness** — comparing a run against an identical copy of itself never
  flags anything, for any record set;
* **sensitivity** — injecting one beyond-tolerance delta into any single
  (cell, metric) always flags exactly that (family, key, metric) triple;
* **order invariance** — shuffling the store's lines on disk can never
  change the report (the detector sees the record *set*, not the file
  order).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trends import (RegressionPolicy, TrendRecord, TrendStore,
                          find_regressions)

#: Metric names spanning every policy band: exact ints (bytes/counters),
#: small-tolerance modelled values (cycles/energy/ratios) and wide-band
#: wall-clock quantities (latency/throughput).
METRIC_NAMES = st.sampled_from([
    "bytes_loaded", "l1_misses", "n_points",
    "cycles", "energy_j", "l1_miss_ratio",
    "latency.p50_s", "throughput_rps", "wall_seconds",
])

VALUES = st.one_of(
    st.integers(min_value=1, max_value=10**9),
    st.floats(min_value=1e-3, max_value=1e9,
              allow_nan=False, allow_infinity=False),
)

#: A history: per-cell metric dicts; cell i gets the key ``{"cell": "c<i>"}``.
HISTORIES = st.lists(
    st.dictionaries(METRIC_NAMES, VALUES, min_size=1, max_size=4),
    min_size=1, max_size=6)


def _records(history, commit: str, order: int):
    return [
        TrendRecord(family="scenario-hw", commit=commit, run_id=commit,
                    order=order, key={"cell": f"c{index}"}, metrics=metrics)
        for index, metrics in enumerate(history)
    ]


def _store(tmp_path, *record_lists) -> TrendStore:
    store = TrendStore(tmp_path / "trends")
    for records in record_lists:
        store.append(records)
    return store


@settings(max_examples=60, deadline=None)
@given(history=HISTORIES)
def test_identical_histories_never_flag(tmp_path_factory, history):
    tmp_path = tmp_path_factory.mktemp("same")
    store = _store(tmp_path, _records(history, "base", 0),
                   _records(history, "head", 1))
    report = find_regressions(store, "base", "head")
    assert report.ok
    assert report.n_cells == len(history)


@settings(max_examples=60, deadline=None)
@given(history=HISTORIES, data=st.data())
def test_single_injected_delta_is_always_flagged(tmp_path_factory, history,
                                                 data):
    tmp_path = tmp_path_factory.mktemp("delta")
    index = data.draw(st.integers(min_value=0, max_value=len(history) - 1),
                      label="cell")
    metric = data.draw(st.sampled_from(sorted(history[index])), label="metric")

    policy = RegressionPolicy()
    head_history = [dict(metrics) for metrics in history]
    value = head_history[index][metric]
    tolerance = policy.tolerance_for(metric, value, value)
    # push the value beyond its own band: +1 breaks an exact metric, a
    # 2x-tolerance relative bump breaks a toleranced one
    head_history[index][metric] = (value + 1 if tolerance == 0.0
                                   else value * (1.0 + 2.0 * tolerance))

    store = _store(tmp_path, _records(history, "base", 0),
                   _records(head_history, "head", 1))
    report = find_regressions(store, "base", "head", policy=policy)
    assert len(report.regressions) == 1
    flagged = report.regressions[0]
    assert (flagged.family, flagged.key, flagged.metric) == \
        ("scenario-hw", {"cell": f"c{index}"}, metric)
    assert flagged.kind == "drift"


@settings(max_examples=40, deadline=None)
@given(history=HISTORIES, data=st.data())
def test_report_is_invariant_under_record_shuffling(tmp_path_factory, history,
                                                    data):
    tmp_path = tmp_path_factory.mktemp("shuffle")
    head_history = [dict(metrics) for metrics in history]
    # arbitrary (possibly in-band) perturbations of the head copy
    for metrics in head_history:
        for name in sorted(metrics):
            if data.draw(st.booleans(), label=f"perturb {name}"):
                metrics[name] = data.draw(VALUES, label=f"new {name}")

    store = _store(tmp_path, _records(history, "base", 0),
                   _records(head_history, "head", 1))
    reference = find_regressions(store, "base", "head")

    path = store.family_path("scenario-hw")
    lines = path.read_text(encoding="utf-8").splitlines()
    shuffled = data.draw(st.permutations(lines), label="line order")
    path.write_text("\n".join(shuffled) + "\n", encoding="utf-8")
    assert find_regressions(store, "base", "head") == reference


def test_missing_metric_and_missing_cell_are_reported(tmp_path):
    store = _store(
        tmp_path,
        _records([{"cycles": 10.0, "bytes_loaded": 5}, {"cycles": 3.0}],
                 "base", 0),
        _records([{"cycles": 10.0}], "head", 1))
    report = find_regressions(store, "base", "head")
    kinds = [(r.kind, r.metric) for r in report.regressions]
    assert kinds == [("missing-metric", "bytes_loaded"), ("missing-cell", "*")]


def test_same_commit_rerecords_resolve_to_the_latest_run(tmp_path):
    """Two runs under one commit: the greater (order, run_id) wins."""
    early = TrendRecord(family="scenario-hw", commit="head", run_id="r1",
                        order=1, key={"cell": "c0"}, metrics={"cycles": 99.0})
    late = TrendRecord(family="scenario-hw", commit="head", run_id="r2",
                       order=2, key={"cell": "c0"}, metrics={"cycles": 10.0})
    store = _store(tmp_path, _records([{"cycles": 10.0}], "base", 0),
                   [early, late])
    assert find_regressions(store, "base", "head").ok


def test_added_head_metrics_are_not_regressions(tmp_path):
    store = _store(tmp_path, _records([{"cycles": 10.0}], "base", 0),
                   _records([{"cycles": 10.0, "extra": 1}], "head", 1))
    assert find_regressions(store, "base", "head").ok
