"""Tests of the binary floating-point format codec."""

from __future__ import annotations

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.floatfmt import (
    BFLOAT16,
    FLOAT16,
    FLOAT24,
    FLOAT32,
    FORMATS_BY_NAME,
    FloatFormat,
    bits_to_float32,
    decompose_float32,
    float32_bits,
    table1_formats,
)

ALL_FORMATS = [FLOAT32, FLOAT16, BFLOAT16, FLOAT24]

#: Values inside the HDL-64E operating range (the domain the paper cares about).
lidar_values = st.floats(min_value=-120.0, max_value=120.0,
                         allow_nan=False, allow_infinity=False)


class TestFormatGeometry:
    def test_float32_geometry(self):
        assert FLOAT32.total_bits == 32
        assert FLOAT32.bias == 127
        assert FLOAT32.mantissa_bits == 23

    def test_float16_geometry(self):
        assert FLOAT16.total_bits == 16
        assert FLOAT16.bias == 15
        assert FLOAT16.exponent_bits == 5
        assert FLOAT16.mantissa_bits == 10

    def test_bfloat16_geometry(self):
        assert BFLOAT16.total_bits == 16
        assert BFLOAT16.exponent_bits == 8
        assert BFLOAT16.mantissa_bits == 7

    def test_float24_geometry(self):
        assert FLOAT24.total_bits == 24
        assert FLOAT24.exponent_bits == 5
        assert FLOAT24.mantissa_bits == 18

    def test_total_bytes(self):
        assert FLOAT16.total_bytes == 2
        assert FLOAT24.total_bytes == 3
        assert FLOAT32.total_bytes == 4

    def test_formats_by_name_contains_all(self):
        assert set(FORMATS_BY_NAME) == {"ieee_fp32", "ieee_fp16", "bfloat16", "float24"}

    def test_table1_formats_are_the_reduced_ones(self):
        names = [fmt.name for fmt in table1_formats()]
        assert names == ["ieee_fp16", "bfloat16", "float24"]

    def test_max_finite_fp16(self):
        assert FLOAT16.max_finite == pytest.approx(65504.0)

    def test_min_normal_fp16(self):
        assert FLOAT16.min_normal == pytest.approx(2.0 ** -14)

    def test_max_finite_covers_lidar_range(self):
        # The HDL-64E range (120 m) must be representable in every format.
        for fmt in ALL_FORMATS:
            assert fmt.max_finite > 120.0


class TestBitHelpers:
    def test_float32_bits_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 130.25, -0.0078125):
            assert bits_to_float32(float32_bits(value)) == value

    def test_decompose_float32_example_from_paper(self):
        # Figure 3b: values in [8, 16) have biased exponent 130.
        sign, exponent, _ = decompose_float32(8.2)
        assert sign == 0
        assert exponent == 130
        sign, exponent, _ = decompose_float32(-4.8)
        assert sign == 1
        assert exponent == 129

    def test_decompose_zero(self):
        assert decompose_float32(0.0) == (0, 0, 0)


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_zero(self, fmt):
        assert fmt.decode(fmt.encode(0.0)) == 0.0

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_negative_zero_keeps_sign(self, fmt):
        bits = fmt.encode(-0.0)
        sign, exponent, mantissa = fmt.split(bits)
        assert (sign, exponent, mantissa) == (1, 0, 0)

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_one(self, fmt):
        assert fmt.decode(fmt.encode(1.0)) == 1.0

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_powers_of_two_are_exact(self, fmt):
        for exponent in range(-5, 7):
            value = 2.0 ** exponent
            assert fmt.round_trip(value) == value
            assert fmt.round_trip(-value) == -value

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_infinity(self, fmt):
        assert math.isinf(fmt.decode(fmt.encode(float("inf"))))
        assert fmt.decode(fmt.encode(float("-inf"))) == float("-inf")

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_nan(self, fmt):
        assert math.isnan(fmt.decode(fmt.encode(float("nan"))))

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_overflow_saturates_to_infinity(self, fmt):
        huge = fmt.max_finite * 4.0
        assert math.isinf(fmt.decode(fmt.encode(huge)))

    def test_fp16_subnormal_roundtrip(self):
        smallest_subnormal = 2.0 ** -24
        assert FLOAT16.round_trip(smallest_subnormal) == smallest_subnormal

    def test_fp16_underflow_to_zero(self):
        assert FLOAT16.round_trip(1e-12) == 0.0

    def test_fp32_roundtrip_is_exact_for_float32_values(self, rng):
        values = rng.uniform(-100, 100, size=200).astype(np.float32)
        for value in values:
            assert FLOAT32.round_trip(float(value)) == float(value)

    def test_known_fp16_encodings(self):
        # Reference patterns from the IEEE-754 half precision standard.
        assert FLOAT16.encode(1.0) == 0x3C00
        assert FLOAT16.encode(-2.0) == 0xC000
        assert FLOAT16.encode(65504.0) == 0x7BFF
        assert FLOAT16.encode(0.5) == 0x3800

    def test_round_to_nearest_even(self):
        # 2049 is exactly halfway between 2048 and 2050 in fp16; round to even (2048).
        assert FLOAT16.round_trip(2049.0) == 2048.0
        # 2051 is halfway between 2050 and 2052; round to even (2052).
        assert FLOAT16.round_trip(2051.0) == 2052.0


class TestAgainstNumpy:
    @given(lidar_values)
    @settings(max_examples=300, deadline=None)
    def test_fp16_matches_numpy_half(self, value):
        expected = float(np.float64(np.float16(np.float64(value))))
        assert FLOAT16.round_trip(value) == expected

    @given(lidar_values)
    @settings(max_examples=200, deadline=None)
    def test_fp16_bits_match_numpy(self, value):
        expected_bits = int(np.float16(value).view(np.uint16))
        assert FLOAT16.encode(value) == expected_bits

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_fp32_matches_numpy_single(self, value):
        expected = float(np.float64(np.float32(value)))
        assert FLOAT32.round_trip(value) == expected


class TestRoundingErrorBound:
    @pytest.mark.parametrize("fmt", [FLOAT16, BFLOAT16, FLOAT24], ids=lambda f: f.name)
    @given(value=lidar_values)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_error_within_half_ulp(self, fmt, value):
        stored = fmt.round_trip(value)
        if math.isinf(stored):
            return
        bits = fmt.encode(value)
        bound = fmt.max_rounding_error(bits)
        assert abs(stored - value) <= bound + 1e-30

    def test_ulp_of_one(self):
        assert FLOAT16.ulp(FLOAT16.encode(1.0)) == 2.0 ** -10

    def test_max_rounding_error_is_half_ulp(self):
        bits = FLOAT16.encode(100.0)
        assert FLOAT16.max_rounding_error(bits) == pytest.approx(FLOAT16.ulp(bits) / 2)


class TestFieldExtraction:
    def test_sign_exponent_field_width(self):
        bits = FLOAT16.encode(-12.5)
        se = FLOAT16.sign_exponent(bits)
        assert 0 <= se < (1 << 6)

    def test_sign_exponent_shared_for_same_binade(self):
        # All values in [8, 16) share the same sign/exponent (paper Fig. 3).
        references = [8.0, 9.7, 12.4, 12.9, 15.99]
        fields = {FLOAT16.sign_exponent(FLOAT16.encode(v)) for v in references}
        assert len(fields) == 1

    def test_sign_exponent_differs_across_binades(self):
        a = FLOAT16.sign_exponent(FLOAT16.encode(7.9))
        b = FLOAT16.sign_exponent(FLOAT16.encode(8.1))
        assert a != b

    def test_split_reassembles(self):
        for value in (-33.25, 0.1875, 119.0):
            bits = FLOAT16.encode(value)
            sign, exponent, mantissa = FLOAT16.split(bits)
            reassembled = (sign << 15) | (exponent << 10) | mantissa
            assert reassembled == bits

    def test_mantissa_and_exponent_accessors(self):
        bits = FLOAT16.encode(3.0)  # 1.5 * 2^1 -> exponent 16, mantissa 0b1000000000
        assert FLOAT16.biased_exponent(bits) == 16
        assert FLOAT16.mantissa(bits) == 1 << 9


class TestQuantizeArrays:
    def test_quantize_matches_scalar(self, rng):
        values = rng.uniform(-60, 60, size=32)
        array = FLOAT16.quantize(values)
        for value, quantised in zip(values, array):
            assert quantised == FLOAT16.round_trip(float(value))

    def test_quantize_array_shape_preserved(self, rng):
        values = rng.uniform(-60, 60, size=(7, 3))
        out = FLOAT16.quantize_array(values)
        assert out.shape == values.shape

    def test_quantize_array_fp16_fast_path_matches_generic(self, rng):
        values = rng.uniform(-60, 60, size=(5, 3))
        fast = FLOAT16.quantize_array(values)
        slow = np.array([[FLOAT16.round_trip(float(v)) for v in row] for row in values])
        np.testing.assert_array_equal(fast, slow)

    def test_quantize_array_bfloat16(self, rng):
        values = rng.uniform(-60, 60, size=(4, 3))
        out = BFLOAT16.quantize_array(values)
        for row_in, row_out in zip(values, out):
            for value, quantised in zip(row_in, row_out):
                assert quantised == BFLOAT16.round_trip(float(value))


class TestPrecisionOrdering:
    def test_fp16_more_accurate_than_bfloat16_in_lidar_range(self, rng):
        """Table I rationale: fp16 balances range/precision better than bfloat16."""
        values = rng.uniform(-120, 120, size=500)
        err16 = np.abs(FLOAT16.quantize(values) - values).mean()
        err_bf = np.abs(BFLOAT16.quantize(values) - values).mean()
        assert err16 < err_bf

    def test_float24_more_accurate_than_fp16(self, rng):
        values = rng.uniform(-120, 120, size=500)
        err24 = np.abs(FLOAT24.quantize(values) - values).mean()
        err16 = np.abs(FLOAT16.quantize(values) - values).mean()
        assert err24 < err16
