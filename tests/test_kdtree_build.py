"""Tests of k-d tree construction and its structural invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdtree import DEFAULT_MAX_LEAF_SIZE, KDTreeConfig, build_kdtree
from repro.pointcloud import PointCloud


class TestBuildBasics:
    def test_pcl_default_leaf_size(self):
        assert DEFAULT_MAX_LEAF_SIZE == 15
        assert KDTreeConfig().max_leaf_size == 15

    def test_invalid_leaf_size_rejected(self):
        with pytest.raises(ValueError):
            KDTreeConfig(max_leaf_size=0)

    def test_empty_cloud_rejected(self):
        with pytest.raises(ValueError):
            build_kdtree(np.empty((0, 3), dtype=np.float32))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            build_kdtree(np.zeros((10, 2), dtype=np.float32))

    def test_accepts_pointcloud_and_array(self, random_cloud):
        from_cloud = build_kdtree(random_cloud)
        from_array = build_kdtree(random_cloud.points)
        assert from_cloud.n_points == from_array.n_points

    def test_single_point(self):
        tree = build_kdtree(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
        assert tree.n_leaves == 1
        assert tree.root.is_leaf
        tree.validate()

    def test_small_cloud_single_leaf(self):
        points = np.random.default_rng(0).uniform(-1, 1, size=(15, 3)).astype(np.float32)
        tree = build_kdtree(points)
        assert tree.n_leaves == 1

    def test_sixteen_points_split(self):
        points = np.random.default_rng(0).uniform(-1, 1, size=(16, 3)).astype(np.float32)
        tree = build_kdtree(points)
        assert tree.n_leaves == 2


class TestInvariants:
    def test_validate_frame_tree(self, frame_tree):
        frame_tree.validate()

    def test_validate_random_tree(self, random_tree):
        random_tree.validate()

    def test_leaf_sizes_bounded(self, frame_tree):
        for leaf in frame_tree.leaves:
            assert 1 <= leaf.n_points <= frame_tree.config.max_leaf_size

    def test_all_points_indexed_once(self, frame_tree):
        all_indices = np.concatenate([leaf.indices for leaf in frame_tree.leaves])
        assert len(all_indices) == frame_tree.n_points
        assert len(np.unique(all_indices)) == frame_tree.n_points

    def test_leaf_ids_sequential(self, frame_tree):
        assert [leaf.leaf_id for leaf in frame_tree.leaves] == list(range(frame_tree.n_leaves))

    def test_node_counts(self, frame_tree):
        leaves = sum(1 for node in frame_tree.iter_nodes() if node.is_leaf)
        interior = sum(1 for node in frame_tree.iter_nodes() if not node.is_leaf)
        assert leaves == frame_tree.stats.n_leaves == frame_tree.n_leaves
        assert interior == frame_tree.stats.n_interior
        # A full binary tree has exactly leaves - 1 interior nodes.
        assert interior == leaves - 1

    def test_depth_reasonably_balanced(self, frame_tree):
        """Median splits keep the depth within a small factor of the optimum."""
        optimal = np.ceil(np.log2(frame_tree.n_points / frame_tree.config.max_leaf_size))
        assert frame_tree.depth() <= optimal + 4

    def test_split_dimension_is_widest(self, random_tree):
        points = random_tree.points
        for node in random_tree.iter_nodes():
            if node.is_leaf:
                continue
            spread = node.bbox_max - node.bbox_min
            assert spread[node.split_dim] == pytest.approx(spread.max())

    def test_duplicate_points_handled(self):
        points = np.tile(np.array([[1.0, 2.0, 3.0]], dtype=np.float32), (50, 1))
        tree = build_kdtree(points)
        tree.validate()
        assert tree.n_points == 50

    def test_collinear_points_handled(self):
        xs = np.linspace(0, 10, 100, dtype=np.float32)
        points = np.column_stack([xs, np.zeros(100), np.zeros(100)]).astype(np.float32)
        tree = build_kdtree(points)
        tree.validate()

    def test_custom_leaf_size(self, random_cloud):
        tree = build_kdtree(random_cloud, KDTreeConfig(max_leaf_size=5))
        tree.validate()
        assert max(leaf.n_points for leaf in tree.leaves) <= 5
        assert tree.n_leaves > build_kdtree(random_cloud).n_leaves

    def test_leaf_points_accessor(self, random_tree):
        leaf = random_tree.leaves[0]
        pts = random_tree.leaf_points(leaf)
        assert pts.shape == (leaf.n_points, 3)
        np.testing.assert_array_equal(pts, random_tree.points[leaf.indices])


class TestBuildProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_points=st.integers(min_value=1, max_value=400),
        max_leaf_size=st.integers(min_value=1, max_value=16),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_arbitrary_clouds(self, seed, n_points, max_leaf_size, scale):
        rng = np.random.default_rng(seed)
        points = (rng.normal(0.0, scale, size=(n_points, 3))).astype(np.float32)
        tree = build_kdtree(points, KDTreeConfig(max_leaf_size=max_leaf_size))
        tree.validate()
        assert tree.n_points == n_points
        assert sum(leaf.n_points for leaf in tree.leaves) == n_points
