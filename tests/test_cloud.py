"""Tests of the PointCloud container and bounding boxes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import BoundingBox, PointCloud


class TestConstruction:
    def test_empty_cloud(self):
        cloud = PointCloud()
        assert len(cloud) == 0
        assert cloud.is_empty
        assert cloud.points.shape == (0, 3)

    def test_from_list(self):
        cloud = PointCloud([[1, 2, 3], [4, 5, 6]])
        assert len(cloud) == 2
        assert cloud.points.dtype == np.float32

    def test_from_array_is_float32(self):
        cloud = PointCloud(np.zeros((5, 3), dtype=np.float64))
        assert cloud.points.dtype == np.float32

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((4, 2)))

    def test_metadata(self):
        cloud = PointCloud([[0, 0, 0]], frame_id="velodyne", timestamp=1.5)
        assert cloud.frame_id == "velodyne"
        assert cloud.timestamp == 1.5

    def test_repr_contains_size(self):
        assert "n_points=3" in repr(PointCloud(np.zeros((3, 3))))


class TestAccessors:
    def test_iteration_and_indexing(self):
        cloud = PointCloud([[1, 2, 3], [4, 5, 6]])
        rows = list(cloud)
        assert len(rows) == 2
        np.testing.assert_array_equal(cloud[1], [4, 5, 6])

    def test_byte_size_uses_pcl_stride(self):
        cloud = PointCloud(np.zeros((10, 3)))
        assert cloud.byte_size() == 160
        assert cloud.byte_size(bytes_per_point=12) == 120

    def test_max_range(self):
        cloud = PointCloud([[3.0, 4.0, 0.0], [0.1, 0.1, 0.1]])
        assert cloud.max_range() == pytest.approx(5.0)

    def test_max_range_empty(self):
        assert PointCloud().max_range() == 0.0

    def test_distances_to(self):
        cloud = PointCloud([[1, 0, 0], [0, 2, 0]])
        np.testing.assert_allclose(cloud.distances_to([0, 0, 0]), [1.0, 2.0])

    def test_brute_force_radius_search(self):
        cloud = PointCloud([[0, 0, 0], [1, 0, 0], [5, 0, 0]])
        hits = cloud.brute_force_radius_search([0, 0, 0], 1.5)
        assert sorted(hits.tolist()) == [0, 1]


class TestTransforms:
    def test_translated(self):
        cloud = PointCloud([[1, 1, 1]]).translated([1, 2, 3])
        np.testing.assert_allclose(cloud[0], [2, 3, 4])

    def test_transformed_identity(self):
        cloud = PointCloud([[1, 2, 3]])
        out = cloud.transformed(np.eye(3), [0, 0, 0])
        np.testing.assert_allclose(out[0], [1, 2, 3])

    def test_transformed_rotation(self):
        rotation = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        out = PointCloud([[1, 0, 0]]).transformed(rotation, [0, 0, 0])
        np.testing.assert_allclose(out[0], [0, 1, 0], atol=1e-6)

    def test_transformed_bad_rotation_rejected(self):
        with pytest.raises(ValueError):
            PointCloud([[1, 0, 0]]).transformed(np.eye(2), [0, 0, 0])

    def test_subsampled(self):
        cloud = PointCloud([[0, 0, 0], [1, 1, 1], [2, 2, 2]])
        sub = cloud.subsampled([2, 0])
        assert len(sub) == 2
        np.testing.assert_allclose(sub[0], [2, 2, 2])

    def test_concatenated(self):
        a = PointCloud([[0, 0, 0]])
        b = PointCloud([[1, 1, 1]])
        assert len(a.concatenated(b)) == 2


class TestBoundingBox:
    def test_from_points(self):
        box = BoundingBox.from_points(np.array([[0, 0, 0], [2, 4, 6]]))
        np.testing.assert_allclose(box.extent, [2, 4, 6])
        np.testing.assert_allclose(box.center, [1, 2, 3])
        assert box.volume == pytest.approx(48.0)

    def test_contains(self):
        box = BoundingBox.from_points(np.array([[0, 0, 0], [1, 1, 1]]))
        assert box.contains([0.5, 0.5, 0.5])
        assert not box.contains([2.0, 0.5, 0.5])

    def test_widest_dimension(self):
        box = BoundingBox.from_points(np.array([[0, 0, 0], [1, 5, 2]]))
        assert box.widest_dimension() == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.empty((0, 3)))

    def test_cloud_bounding_box(self):
        cloud = PointCloud([[0, 0, 0], [1, 2, 3]])
        box = cloud.bounding_box()
        np.testing.assert_allclose(box.maximum, [1, 2, 3])
