"""Trend-tracking lockdown: schema round trips, store merges, dashboard bytes.

The trends layer's contract is the repository's general one — byte
determinism — applied to its own observability data: records round-trip
through JSON exactly, the store's files depend only on the record *set*
(never append order), and two dashboard renders of the same store are
byte-identical.  The collect adapters are covered against hand-built result
objects (nothing is re-run), and the self-lint test keeps the one
environment-read exemption justified.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cache_sweep import GEOMETRIES, CacheSweepResult, GeometryRun
from repro.analysis.hw_sweep import HardwareScenarioRun, HardwareSweepResult
from repro.trends import (KNOWN_FAMILIES, TrendContext, TrendRecord,
                          TrendSchemaError, TrendStore, TrendStoreError,
                          collect_cache_sweep, collect_campaign_manifest,
                          collect_golden_snapshots, collect_hw_sweep,
                          collect_pipeline_run, collect_serving_load,
                          flatten_metrics, maybe_record, migrate,
                          register_migration, render_dashboard,
                          trend_context, unregister_migration)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _record(**overrides) -> TrendRecord:
    fields = dict(family="scenario-hw", commit="baseline", run_id="baseline",
                  key={"scenario": "urban", "backend": "bonsai-batched"},
                  metrics={"cycles": 123.5, "bytes_loaded": 4096})
    fields.update(overrides)
    return TrendRecord(**fields)


class TestTrendRecordSchema:
    def test_json_round_trip_is_exact(self):
        record = _record(metrics={
            "a": 0.1, "b": 1 / 3, "c": 2.5e-17, "d": 12345678901234567,
            "e": -0.0, "f": 1e300})
        again = TrendRecord.from_json(record.to_json())
        assert again == record
        # ints stay ints, floats stay floats, bit for bit
        assert isinstance(again.metrics["d"], int)
        assert again.to_json() == record.to_json()

    def test_key_and_metric_order_is_canonicalized(self):
        one = _record(key={"scenario": "urban", "backend": "bonsai-batched"},
                      metrics={"cycles": 1.0, "bytes_loaded": 2})
        other = _record(key={"backend": "bonsai-batched", "scenario": "urban"},
                        metrics={"bytes_loaded": 2, "cycles": 1.0})
        assert one == other
        assert one.to_json() == other.to_json()
        assert list(one.metrics) == ["bytes_loaded", "cycles"]

    @pytest.mark.parametrize("overrides", [
        dict(family="Has Spaces"),
        dict(family=""),
        dict(commit=""),
        dict(run_id=""),
        dict(order="3"),
        dict(key={"scenario": 7}),
        dict(key={"": "x"}),
        dict(metrics={"cycles": float("nan")}),
        dict(metrics={"cycles": float("inf")}),
        dict(metrics={"flag": True}),
        dict(metrics={"name": "urban"}),
    ], ids=["family-case", "family-empty", "commit-empty", "runid-empty",
            "order-str", "key-nonstr", "key-empty-name", "metric-nan",
            "metric-inf", "metric-bool", "metric-str"])
    def test_invalid_records_are_rejected(self, overrides):
        with pytest.raises(TrendSchemaError):
            _record(**overrides)

    def test_unknown_fields_are_rejected(self):
        data = _record().as_dict()
        data["wallclock"] = 1.0
        with pytest.raises(TrendSchemaError, match="wallclock"):
            TrendRecord.from_dict(data)

    def test_newer_schema_version_is_rejected(self):
        data = _record().as_dict()
        data["schema_version"] = 99
        with pytest.raises(TrendSchemaError, match="update the repro"):
            TrendRecord.from_dict(data)

    def test_old_version_without_hook_is_rejected(self):
        data = _record().as_dict()
        data["schema_version"] = 0
        with pytest.raises(TrendSchemaError, match="no migration"):
            TrendRecord.from_dict(data)

    def test_migration_hook_lifts_old_records(self):
        data = _record().as_dict()
        data["schema_version"] = 0
        data["run"] = data.pop("run_id")

        @register_migration(0)
        def _lift(old):
            old["run_id"] = old.pop("run")
            return old

        try:
            with pytest.raises(TrendSchemaError):
                register_migration(0)(lambda d: d)  # duplicates are errors
            record = TrendRecord.from_dict(data)
            assert record == _record()
            assert migrate({"schema_version": 0, "run": "x"})["run_id"] == "x"
        finally:
            unregister_migration(0)


class TestTrendStore:
    def test_append_is_order_invariant_and_idempotent(self, tmp_path):
        records = [_record(commit=c, run_id=c, order=i, metrics={"v": i})
                   for i, c in enumerate(["c1", "c2", "c3"])]
        forward = TrendStore(tmp_path / "fwd")
        for record in records:
            forward.append([record])
        backward = TrendStore(tmp_path / "bwd")
        backward.append(list(reversed(records)))
        backward.append(records)  # replay is a no-op
        fwd_bytes = forward.family_path("scenario-hw").read_bytes()
        assert fwd_bytes == backward.family_path("scenario-hw").read_bytes()
        assert forward.load("scenario-hw") == backward.load("scenario-hw")

    def test_runs_and_latest_commit(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append([_record(commit="new", run_id="r", order=5),
                      _record(commit="old", run_id="r", order=1),
                      _record(family="map-scale", commit="old", run_id="r",
                              order=1, key={"geometry": "table-iv"})])
        assert store.runs() == [(1, "old", "r"), (5, "new", "r")]
        assert store.latest_commit() == "new"
        assert store.families() == ["map-scale", "scenario-hw"]
        assert [r.commit for r in store.records_of_commit("old")] == ["old"] * 2

    def test_missing_directory_is_actionable(self, tmp_path):
        with pytest.raises(TrendStoreError, match="REPRO_TRENDS_DIR"):
            TrendStore(tmp_path / "nowhere").families()

    def test_unknown_family_lists_available(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append([_record()])
        with pytest.raises(TrendStoreError, match="scenario-hw"):
            store.load("no-such-family")

    def test_malformed_line_reports_file_and_lineno(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append([_record()])
        path = store.family_path("scenario-hw")
        path.write_text(path.read_text() + "{not json\n", encoding="utf-8")
        with pytest.raises(TrendStoreError, match=r"scenario-hw\.jsonl:2"):
            store.load("scenario-hw")

    def test_misfiled_record_is_rejected(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append([_record()])
        misfiled = store.family_path("map-scale")
        misfiled.write_text(_record().to_json() + "\n", encoding="utf-8")
        with pytest.raises(TrendStoreError, match="move it to"):
            store.load("map-scale")


def _fake_hw_sweep() -> HardwareSweepResult:
    runs = []
    for scenario in ("urban", "tunnel"):
        for mode, backend in (("baseline", "baseline-batched"),
                              ("bonsai", "bonsai-batched")):
            scale = 1 if mode == "baseline" else 2
            runs.append(HardwareScenarioRun(
                scenario=scenario, mode=mode, backend=backend,
                metrics={
                    "clusters_total": 5,
                    "hardware": {"clustering": {
                        "bytes_loaded": 1000 * scale, "cycles": 50.5 * scale,
                        "l2_to_l1_bytes": 600 * scale,
                        "dram_to_l2_bytes": 300 * scale,
                        "energy_j": 0.25 * scale}},
                    "track_labels": {"car": 2},
                    "notes": "ignored",
                }))
    return HardwareSweepResult(runs=runs, n_frames=2, n_beams=10,
                               n_azimuth_steps=90,
                               modes=("baseline", "bonsai"))


class TestCollectAdapters:
    def test_flatten_metrics_keeps_finite_numeric_leaves_only(self):
        flat = flatten_metrics({
            "hardware": {"clustering": {"cycles": 2.0, "name": "x"}},
            "count": 3, "ok": True, "bad": float("nan"),
            "listy": [1, 2], "nothing": None})
        assert flat == {"hardware.clustering.cycles": 2.0, "count": 3}

    def test_collect_pipeline_run_and_hw_sweep(self):
        sweep = _fake_hw_sweep()
        records = collect_hw_sweep(sweep, commit="c", run_id="r", order=3)
        assert len(records) == 4
        cells = {(r.key["scenario"], r.key["backend"]) for r in records}
        assert sorted(cells) == [
            ("tunnel", "baseline-batched"), ("tunnel", "bonsai-batched"),
            ("urban", "baseline-batched"), ("urban", "bonsai-batched")]
        first = records[0]
        assert first.family == "scenario-hw" and first.order == 3
        assert first.metrics["hardware.clustering.bytes_loaded"] == 1000
        assert "notes" not in first.metrics
        single = collect_pipeline_run(
            sweep.runs[0].metrics, scenario="urban",
            backend="baseline-batched", commit="c", run_id="r")
        assert single.family == "scenario-matrix"
        assert single.metrics["clusters_total"] == 5

    def test_collect_cache_sweep(self):
        sweep = _fake_hw_sweep()
        result = CacheSweepResult(
            runs=[GeometryRun(geometry=GEOMETRIES["table-iv"], sweep=sweep),
                  GeometryRun(geometry=GEOMETRIES["l1-8k"], sweep=sweep)],
            n_frames=2, n_beams=10, n_azimuth_steps=90,
            modes=("baseline", "bonsai"))
        records = collect_cache_sweep(result, commit="c", run_id="r")
        assert len(records) == 4
        keys = {(r.key["geometry"], r.key["backend"]) for r in records}
        assert ("table-iv", "baseline") in keys and ("l1-8k", "bonsai") in keys
        baseline_tiv = next(r for r in records
                            if r.key == {"geometry": "table-iv",
                                         "backend": "baseline"})
        # summed over the two scenarios of the fake sweep
        assert baseline_tiv.metrics["bytes_loaded"] == 2000

    def test_collect_serving_load(self):
        from repro.serve.loadgen import ServingLoadResult

        result = ServingLoadResult(
            n_clients=2, n_points=100, n_requests_per_client=4, n_queries=8,
            radius=0.5, k=3, wall_seconds=2.0, parent_compression_passes=1,
            client_compression_passes=[0, 0], checksums=[5, 5],
            latencies={"radius:baseline-batched": [0.1, 0.2, 0.3, 0.4],
                       "knn:bonsai-batched": [0.2, 0.2, 0.2, 0.2]})
        records = collect_serving_load(result, commit="c", run_id="r")
        classes = [r.key["class"] for r in records]
        assert classes == ["fleet", "knn:bonsai-batched",
                           "radius:baseline-batched"]
        fleet = records[0]
        assert fleet.metrics["total_requests"] == 8
        assert fleet.metrics["throughput_rps"] == 4.0
        assert records[1].metrics["latency.p50_s"] == pytest.approx(0.2)

    def test_collect_campaign_manifest(self):
        manifest = {
            "campaign": {"seed": 42, "budget": 3, "backends": ["a", "b"]},
            "n_divergences": 2,
            "trials": [
                {"trial": 0, "world": {"ops": [1, 2]}, "divergences": []},
                {"trial": 1, "world": {"ops": [1]},
                 "divergences": [{"kind": "result"}, {"kind": "stats"}]},
            ],
        }
        (record,) = collect_campaign_manifest(manifest, commit="c", run_id="r")
        assert record.family == "campaign" and record.key == {"seed": "42"}
        assert record.metrics["n_trials"] == 2
        assert record.metrics["n_divergences"] == 2
        assert record.metrics["divergences.result"] == 1
        assert record.metrics["n_ops"] == 3

    def test_collect_golden_snapshots_covers_every_committed_golden(self):
        records = collect_golden_snapshots(GOLDEN_DIR, commit="c", run_id="r")
        n_goldens = len(list(GOLDEN_DIR.glob("*.json")))
        assert n_goldens and len(records) == n_goldens
        families = sorted({r.family for r in records})
        assert families == ["golden-hardware", "golden-pipeline"]
        assert all(set(r.key) == {"scenario", "mode"} for r in records)
        # every record holds at least one numeric metric from the snapshot
        assert all(r.metrics for r in records)

    def test_known_families_covers_every_collector_output(self):
        assert "scenario-hw" in KNOWN_FAMILIES
        assert len(KNOWN_FAMILIES) == len(sorted(KNOWN_FAMILIES))


class TestBenchmarkWiring:
    def test_trend_context_is_off_without_the_knob(self):
        assert trend_context(environ={}) is None
        assert maybe_record(lambda ctx: [_record()], environ={}) is None

    def test_trend_context_reads_the_documented_knobs(self, tmp_path):
        context = trend_context(environ={
            "REPRO_TRENDS_DIR": str(tmp_path), "REPRO_TRENDS_COMMIT": "abc",
            "REPRO_TRENDS_RUN_ID": "run-7", "REPRO_TRENDS_ORDER": "7"})
        assert context == TrendContext(root=tmp_path, commit="abc",
                                       run_id="run-7", order=7)
        defaulted = trend_context(environ={"REPRO_TRENDS_DIR": str(tmp_path)})
        assert (defaulted.commit, defaulted.run_id, defaulted.order) == \
            ("local", "local", 0)
        with pytest.raises(ValueError, match="REPRO_TRENDS_ORDER"):
            trend_context(environ={"REPRO_TRENDS_DIR": str(tmp_path),
                                   "REPRO_TRENDS_ORDER": "soon"})

    def test_maybe_record_writes_through_the_context(self, tmp_path):
        touched = maybe_record(
            lambda ctx: [_record(commit=ctx.commit, run_id=ctx.run_id,
                                 order=ctx.order)],
            environ={"REPRO_TRENDS_DIR": str(tmp_path),
                     "REPRO_TRENDS_COMMIT": "abc"})
        assert touched == [tmp_path / "scenario-hw.jsonl"]
        (record,) = TrendStore(tmp_path).load("scenario-hw")
        assert (record.commit, record.run_id) == ("abc", "abc")


class TestDashboardDeterminism:
    @pytest.fixture()
    def store(self, tmp_path):
        store = TrendStore(tmp_path)
        records = []
        for order, commit in enumerate(["baseline", "head"]):
            scale = 1.0 if commit == "baseline" else 1.2
            records.extend([
                _record(commit=commit, run_id=commit, order=order,
                        metrics={"cycles": 100.0 * scale,
                                 "bytes_loaded": 4096}),
                TrendRecord(family="campaign", commit=commit, run_id=commit,
                            order=order, key={"seed": "0"},
                            metrics={"n_trials": 25, "n_divergences": 0}),
            ])
        store.append(records)
        return store

    def test_two_renders_are_byte_identical(self, store):
        one = render_dashboard(store).encode("utf-8")
        two = render_dashboard(store).encode("utf-8")
        assert one == two

    def test_regressions_are_highlighted(self, store):
        page = render_dashboard(store)
        assert 'class="regress"' in page
        assert "cycles" in page and "svg" in page
        assert "1 flagged metric(s)" in page

    def test_campaign_family_gets_the_divergence_table(self, store):
        page = render_dashboard(store)
        assert "Campaign divergences by seed" in page

    def test_single_run_skips_the_regression_pass(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append([_record()])
        page = render_dashboard(store)
        assert "Regression pass: skipped" in page
        assert 'class="regress"' not in page

    def test_empty_store_is_an_actionable_error(self, tmp_path):
        with pytest.raises(TrendStoreError, match="record some runs"):
            render_dashboard(TrendStore(tmp_path / "missing"))

    def test_dashboard_escapes_untrusted_text(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append([_record(commit="<script>x</script>",
                              key={"scenario": "<img>"})])
        page = render_dashboard(store)
        assert "<script>" not in page and "<img>" not in page


class TestTrendsSelfLint:
    def test_trends_package_is_lint_clean(self):
        from repro.lint import run_lint

        src = Path(__file__).resolve().parent.parent / "src" / "repro" / "trends"
        report = run_lint([src])
        assert report.ok, [f.describe() for f in report.findings]

    def test_env_read_exemption_is_justified(self):
        from repro.lint.rules_determinism import ENV_READ_ALLOWED

        reason = ENV_READ_ALLOWED.get("repro/trends/collect.py")
        assert reason and "REPRO_TRENDS_DIR" in reason
        # the knob module is the only trends module reading the environment
        trends = Path(__file__).resolve().parent.parent / "src/repro/trends"
        for path in sorted(trends.glob("*.py")):
            text = path.read_text(encoding="utf-8")
            if path.name != "collect.py":
                assert "os.environ" not in text, path.name


def test_committed_baseline_store_loads_and_is_canonical():
    """The committed benchmarks/trends/ store must parse, carry the baseline
    commit, and already be in canonical byte form (re-append is a no-op)."""
    root = Path(__file__).resolve().parent.parent / "benchmarks" / "trends"
    store = TrendStore(root)
    families = store.families()
    assert "scenario-hw" in families and "map-scale" in families
    for family in families:
        records = store.load(family)
        assert records, family
        assert {r.commit for r in records} == {"baseline"}
        path = store.family_path(family)
        canonical = "".join(
            r.to_json() + "\n"
            for r in sorted(records, key=lambda r: r.sort_key()))
        assert path.read_text(encoding="utf-8") == canonical, family
