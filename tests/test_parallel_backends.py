"""Lockdown of the multiprocessing backends' determinism contract.

The cross-backend parity suite (``test_backend_parity.py``) already fuzzes
the ``-mp`` backends against the reference because they are registry names.
This file locks down what parity alone cannot show: that the parallel path
really shards and merges (not silently falling back to serial), that the
merge is **order-independent** — shuffled worker completion order yields
identical merged results and statistics — and that the end-to-end pipeline
produces identical golden-grade metrics through the parallel backends.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.engine import get_backend
from repro.engine.parallel import (
    MIN_PARALLEL_QUERIES,
    merge_knn_shards,
    merge_radius_shards,
    plan_shards,
    process_map,
    resolve_workers,
)
from repro.kdtree import SearchStats, build_kdtree

MP_BACKENDS = ("baseline-batched-mp", "bonsai-batched-mp")
RADIUS = 0.8
K = 6


@pytest.fixture(scope="module")
def case():
    """A batch comfortably above the parallel threshold."""
    rng = np.random.default_rng(11)
    points = rng.uniform(-15.0, 15.0, (5000, 3)).astype(np.float32)
    tree = build_kdtree(points)
    base = points[rng.integers(0, len(points), 400)]
    queries = base.astype(np.float64) + rng.normal(0.0, 0.3, base.shape)
    assert queries.shape[0] >= MIN_PARALLEL_QUERIES
    return tree, queries


def _stats_tuple(stats: SearchStats):
    return (stats.queries, stats.leaves_visited, stats.interior_visited,
            stats.points_examined, stats.points_in_radius,
            stats.point_bytes_loaded, stats.leaf_visit_counts)


# ----------------------------------------------------------------------
# Bitwise parity of the genuinely parallel path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MP_BACKENDS)
class TestParallelPathParity:
    def test_radius_bitwise_identical_to_single_process(self, case, name):
        tree, queries = case
        mp_backend = get_backend(name, tree)
        assert mp_backend._use_parallel(queries.shape[0])  # really parallel
        reference = get_backend(mp_backend.inner_name, tree)
        got = mp_backend.radius_search(queries, RADIUS)
        want = reference.radius_search(queries, RADIUS)
        assert got.offsets.dtype == want.offsets.dtype
        assert got.point_indices.dtype == want.point_indices.dtype
        assert np.array_equal(got.offsets, want.offsets)
        assert np.array_equal(got.point_indices, want.point_indices)

    def test_knn_bitwise_identical_to_single_process(self, case, name):
        tree, queries = case
        mp_backend = get_backend(name, tree)
        reference = get_backend(mp_backend.inner_name, tree)
        got = mp_backend.knn(queries, K)
        want = reference.knn(queries, K)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.distances, want.distances)

    def test_merged_search_stats_identical(self, case, name):
        tree, queries = case
        mp_stats, ref_stats = SearchStats(), SearchStats()
        mp_backend = get_backend(name, tree, stats=mp_stats)
        mp_backend.radius_search(queries, RADIUS)
        get_backend(mp_backend.inner_name, tree,
                    stats=ref_stats).radius_search(queries, RADIUS)
        assert _stats_tuple(mp_stats) == _stats_tuple(ref_stats)

    def test_serial_fallbacks_match_parallel(self, case, name):
        """Tiny batches, one worker, and a huge threshold are all identical."""
        tree, queries = case
        want = get_backend(name, tree).radius_search(queries, RADIUS)
        one_worker = get_backend(name, tree, n_workers=1)
        forced_serial = get_backend(name, tree,
                                    min_parallel_queries=10 ** 9)
        assert not one_worker._use_parallel(queries.shape[0])
        assert not forced_serial._use_parallel(queries.shape[0])
        for backend in (one_worker, forced_serial):
            got = backend.radius_search(queries, RADIUS)
            assert np.array_equal(got.point_indices, want.point_indices)
        small = get_backend(name, tree).radius_search(queries[:8], RADIUS)
        assert np.array_equal(
            small.point_indices,
            get_backend(name, tree).radius_search(queries[:8], RADIUS).point_indices)


def test_bonsai_stats_merge_identically(case):
    tree, queries = case
    reference = get_backend("bonsai-batched", tree)
    parallel = get_backend("bonsai-batched-mp", tree)
    reference.radius_search(queries, RADIUS)
    parallel.radius_search(queries, RADIUS)
    assert dataclasses.asdict(parallel.bonsai_stats) == \
        dataclasses.asdict(reference.bonsai_stats)


def test_pool_is_persistent_and_closeable(case):
    """One pool per backend, reused across calls, torn down by close()."""
    tree, queries = case
    backend = get_backend("baseline-batched-mp", tree)
    assert backend._pool is None  # lazy: no pool before the first parallel call
    want = backend.radius_search(queries, RADIUS)
    pool = backend._pool
    assert pool is not None
    backend.radius_search(queries, RADIUS)
    assert backend._pool is pool  # reused, not rebuilt per call
    backend.close()
    assert backend._pool is None
    backend.close()  # idempotent
    # A call after close() restarts a fresh pool and still agrees.
    again = backend.radius_search(queries, RADIUS)
    assert backend._pool is not None and backend._pool is not pool
    assert np.array_equal(again.point_indices, want.point_indices)
    backend.close()


def test_compression_happens_once_in_the_parent(case):
    """Workers must receive the already-compressed tree."""
    tree, queries = case
    fresh = build_kdtree(tree.points)
    backend = get_backend("bonsai-batched-mp", fresh)
    assert backend.report is not None  # parent compressed on construction
    backend.radius_search(queries, RADIUS)
    # A second mp backend over the same tree sees it pre-compressed.
    assert get_backend("bonsai-batched-mp", fresh).report is None


# ----------------------------------------------------------------------
# Order independence of the merge
# ----------------------------------------------------------------------
class TestOrderIndependence:
    """Shuffled worker completion order cannot change any merged output."""

    def _shard_parts(self, tree, queries, inner_name):
        parts = []
        for start, stop in plan_shards(queries.shape[0], 4):
            stats = SearchStats()
            backend = get_backend(inner_name, tree, stats=stats)
            result = backend.radius_search(queries[start:stop], RADIUS)
            parts.append((result, stats, backend.bonsai_stats))
        return parts

    @pytest.mark.parametrize("inner", ["baseline-batched", "bonsai-batched"])
    def test_shuffled_completion_order_same_merge(self, case, inner):
        tree, queries = case
        want = get_backend(inner, tree).radius_search(queries, RADIUS)
        want_stats = SearchStats()
        get_backend(inner, tree, stats=want_stats).radius_search(queries, RADIUS)

        parts = self._shard_parts(tree, queries, inner)
        for seed in (0, 1, 2):
            # Simulate workers finishing in arbitrary order: shuffle the
            # (index, part) arrivals, then merge exactly as the backend does
            # — results by shard index, statistics by commutative merge in
            # arrival order.
            arrivals = list(enumerate(parts))
            np.random.default_rng(seed).shuffle(arrivals)
            by_index = [part for _, part in sorted(arrivals, key=lambda a: a[0])]
            merged = merge_radius_shards([result for result, _, _ in by_index])
            assert np.array_equal(merged.offsets, want.offsets)
            assert np.array_equal(merged.point_indices, want.point_indices)

            merged_stats = SearchStats()
            merged_bonsai = None
            for _, (_, stats, bonsai) in arrivals:
                merged_stats.merge(stats)
                if bonsai is not None:
                    if merged_bonsai is None:
                        from repro.core.bonsai_search import BonsaiStats
                        merged_bonsai = BonsaiStats()
                    merged_bonsai.merge(bonsai)
            assert _stats_tuple(merged_stats) == _stats_tuple(want_stats)
            if merged_bonsai is not None:
                reference = get_backend(inner, tree)
                reference.radius_search(queries, RADIUS)
                assert dataclasses.asdict(merged_bonsai) == \
                    dataclasses.asdict(reference.bonsai_stats)

    def test_knn_merge_is_pure_row_stacking(self, case):
        tree, queries = case
        want = get_backend("baseline-batched", tree).knn(queries, K)
        shards = []
        for start, stop in plan_shards(queries.shape[0], 5):
            shards.append(get_backend("baseline-batched", tree)
                          .knn(queries[start:stop], K))
        merged = merge_knn_shards(shards)
        assert np.array_equal(merged.indices, want.indices)
        assert np.array_equal(merged.distances, want.distances)

    def test_hierarchy_stats_merge_commutes(self, case):
        """The sweep's HierarchyStats merge is order-insensitive too."""
        from repro.engine import ExecutionConfig

        tree, queries = case
        halves = []
        for chunk in (queries[:40], queries[40:80]):
            backend = ExecutionConfig(hardware=True).make_backend(tree)
            backend.radius_search(chunk, RADIUS)
            halves.append(backend.hierarchy)
        from repro.hwmodel.cache import HierarchyStats
        ab, ba = HierarchyStats(), HierarchyStats()
        ab.merge(halves[0]); ab.merge(halves[1])
        ba.merge(halves[1]); ba.merge(halves[0])
        assert dataclasses.asdict(ab) == dataclasses.asdict(ba)


# ----------------------------------------------------------------------
# The pipeline through the parallel backends (golden-grade metrics)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flavor", ["baseline", "bonsai"])
def test_pipeline_metrics_identical_through_mp_backend(flavor):
    """End-to-end metrics cannot tell ``-batched`` from ``-batched-mp``."""
    import json

    from repro.engine import ExecutionConfig
    from repro.workloads import PipelineRunner, PipelineRunnerConfig

    preset = dict(n_frames=2, seed=7, n_beams=10, n_azimuth_steps=90)

    def metrics(backend):
        runner = PipelineRunner.from_scenario(
            "urban", config=PipelineRunnerConfig(
                execution=ExecutionConfig(backend=backend)), **preset)
        return json.dumps(runner.run().metrics(), sort_keys=True)

    assert metrics(f"{flavor}-batched-mp") == metrics(f"{flavor}-batched")


# ----------------------------------------------------------------------
# Shard planning and pool utilities
# ----------------------------------------------------------------------
def _slow_echo(item):
    """Completes in *reverse* submission order (later items finish first)."""
    index, total = item
    time.sleep(0.01 * (total - index))
    return index


class TestUtilities:
    def test_plan_shards_contiguous_and_complete(self):
        for n, k in ((400, 4), (5, 8), (1, 3), (97, 3)):
            shards = plan_shards(n, k)
            assert shards[0][0] == 0 and shards[-1][1] == n
            assert all(stop > start for start, stop in shards)
            assert all(shards[i][1] == shards[i + 1][0]
                       for i in range(len(shards) - 1))
            assert len(shards) == min(n, k)
        assert plan_shards(0, 4) == []

    def test_resolve_workers_precedence(self, monkeypatch):
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_MP_WORKERS", "7")
        assert resolve_workers() == 7
        monkeypatch.delenv("REPRO_MP_WORKERS")
        assert resolve_workers() >= 2

    @pytest.mark.parametrize("garbage", ["four", "0", "-2", "2.5", "1e1"])
    def test_resolve_workers_rejects_garbage_env(self, monkeypatch, garbage):
        """A broken REPRO_MP_WORKERS must fail loudly, naming the variable.

        Regression: non-numeric values used to escape as raw ValueError
        from ``int()`` and non-positive ones crashed the pool later with
        an inscrutable multiprocessing error.
        """
        monkeypatch.setenv("REPRO_MP_WORKERS", garbage)
        with pytest.raises(ValueError, match="REPRO_MP_WORKERS"):
            resolve_workers()

    def test_resolve_workers_blank_env_means_unset(self, monkeypatch):
        """Whitespace-only values behave like the variable being absent."""
        for blank in ("", "   ", "\t"):
            monkeypatch.setenv("REPRO_MP_WORKERS", blank)
            assert resolve_workers() >= 2
        # An explicit n_workers still wins over a (valid) env value.
        monkeypatch.setenv("REPRO_MP_WORKERS", "7")
        assert resolve_workers(2) == 2

    def test_process_map_preserves_item_order(self):
        """Results come back in item order even when completion inverts it."""
        items = [(i, 6) for i in range(6)]
        assert process_map(_slow_echo, items, n_jobs=3) == list(range(6))

    def test_process_map_serial_fallback(self):
        items = [(i, 2) for i in range(2)]
        assert process_map(_slow_echo, items, n_jobs=1) == [0, 1]

    def test_serial_fallback_restores_worker_globals(self, case):
        """Regression: the serial path ran initializers in-process and left
        ``_WORKER_STATE`` behind, so a later serial map (or a live worker
        global in this process) saw a stale tree."""
        from repro.engine import parallel
        from repro.engine.parallel import _init_worker, _radius_shard

        tree, queries = case
        before = parallel._WORKER_STATE
        want = get_backend("baseline-batched", tree).radius_search(
            queries[:4], RADIUS)
        got = process_map(
            _radius_shard, [(queries[:4], RADIUS)], n_jobs=1,
            initializer=_init_worker, initargs=(tree, "baseline-batched", {}))
        assert parallel._WORKER_STATE is before  # restored, not leaked
        assert np.array_equal(got[0][1], want.point_indices)

        # Two serial maps with different trees cannot contaminate each other.
        other_tree = build_kdtree(
            np.random.default_rng(3).uniform(-5, 5, (64, 3)).astype(np.float32))
        small = get_backend("baseline-batched", other_tree).radius_search(
            queries[:4], RADIUS)
        got2 = process_map(
            _radius_shard, [(queries[:4], RADIUS)], n_jobs=1,
            initializer=_init_worker,
            initargs=(other_tree, "baseline-batched", {}))
        assert np.array_equal(got2[0][1], small.point_indices)
        assert parallel._WORKER_STATE is before


# ----------------------------------------------------------------------
# Empty and degenerate batches through the parallel backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MP_BACKENDS)
class TestEmptyBatches:
    """``plan_shards(0, k) == []`` must surface as well-formed empty results."""

    def test_empty_radius_batch(self, case, name):
        tree, _ = case
        empty = np.empty((0, 3), dtype=np.float64)
        result = get_backend(name, tree).radius_search(empty, RADIUS)
        assert result.n_queries == 0
        assert result.offsets.shape == (1,) and result.offsets[0] == 0
        assert result.point_indices.shape == (0,)
        assert result.counts.shape == (0,)

    def test_empty_knn_batch(self, case, name):
        tree, _ = case
        empty = np.empty((0, 3), dtype=np.float64)
        result = get_backend(name, tree).knn(empty, K)
        assert result.indices.shape == (0, min(K, len(tree.points)))
        assert result.distances.shape == result.indices.shape

    def test_single_query_batch(self, case, name):
        """One query (below any parallel threshold) matches the reference."""
        tree, queries = case
        got = get_backend(name, tree).radius_search(queries[:1], RADIUS)
        want = get_backend("baseline-batched", tree).radius_search(
            queries[:1], RADIUS)
        assert np.array_equal(got.offsets, want.offsets)
        assert np.array_equal(got.point_indices, want.point_indices)
