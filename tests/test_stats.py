"""Tests of the leaf sign/exponent similarity statistics (Section III-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.floatfmt import FLOAT16, FLOAT32
from repro.core.stats import LeafSimilarityStats, aggregate_similarity, leaf_similarity
from repro.kdtree import build_kdtree


class TestLeafSimilarity:
    def test_counts_sum_correctly(self, random_tree):
        stats = leaf_similarity(random_tree)
        assert stats.n_leaves == random_tree.n_leaves
        assert stats.n_points == random_tree.n_points
        for coord in ("x", "y", "z"):
            assert 0 <= stats.shared_per_coord[coord] <= stats.n_leaves
        assert stats.fully_shared_leaves <= min(stats.shared_per_coord.values())

    def test_share_rates_between_zero_and_one(self, random_tree):
        stats = leaf_similarity(random_tree)
        for rate in stats.share_rates.values():
            assert 0.0 <= rate <= 1.0
        assert 0.0 <= stats.fully_shared_rate <= 1.0

    def test_lidar_frame_matches_paper_band(self, frame_tree):
        """The paper reports 78% (x) and 83% (y) sharing on real frames."""
        stats = leaf_similarity(frame_tree)
        assert stats.share_rate("x") > 0.5
        assert stats.share_rate("y") > 0.5

    def test_tight_cluster_shares_everything(self):
        rng = np.random.default_rng(3)
        points = (np.array([40.0, 40.0, 3.0])
                  + rng.normal(0.0, 0.05, size=(60, 3))).astype(np.float32)
        tree = build_kdtree(points)
        stats = leaf_similarity(tree)
        assert stats.fully_shared_rate == 1.0

    def test_wild_cloud_shares_little(self):
        rng = np.random.default_rng(5)
        signs = rng.choice([-1.0, 1.0], size=(300, 3))
        magnitudes = np.exp(rng.uniform(np.log(0.01), np.log(100.0), size=(300, 3)))
        tree = build_kdtree((signs * magnitudes).astype(np.float32))
        stats = leaf_similarity(tree)
        assert stats.fully_shared_rate < 0.3

    def test_reduced_format_gives_similar_rates(self, frame_tree):
        fp32_stats = leaf_similarity(frame_tree, FLOAT32)
        fp16_stats = leaf_similarity(frame_tree, FLOAT16)
        for coord in ("x", "y"):
            assert abs(fp32_stats.share_rate(coord) - fp16_stats.share_rate(coord)) < 0.15

    def test_empty_stats_rates_are_zero(self):
        stats = LeafSimilarityStats()
        assert stats.share_rate("x") == 0.0
        assert stats.fully_shared_rate == 0.0


class TestAggregation:
    def test_aggregate_over_trees(self, random_cloud, filtered_frame):
        trees = [build_kdtree(random_cloud), build_kdtree(filtered_frame)]
        individual = [leaf_similarity(t) for t in trees]
        total = aggregate_similarity(trees)
        assert total.n_leaves == sum(s.n_leaves for s in individual)
        assert total.n_points == sum(s.n_points for s in individual)
        assert total.shared_per_coord["x"] == sum(s.shared_per_coord["x"] for s in individual)

    def test_aggregate_empty_iterable(self):
        total = aggregate_similarity([])
        assert total.n_leaves == 0

    def test_merge_format_mismatch_rejected(self):
        a = LeafSimilarityStats(format_name="ieee_fp32")
        b = LeafSimilarityStats(format_name="ieee_fp16")
        with pytest.raises(ValueError):
            a.merge(b)
