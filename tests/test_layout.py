"""Tests of the virtual memory layout of the tree data structures."""

from __future__ import annotations

import pytest

from repro.kdtree import (
    INDEX_STRIDE_BYTES,
    NODE_RECORD_BYTES,
    POINT_STRIDE_BYTES,
    TreeMemoryLayout,
)


class TestLayout:
    def test_point_addresses_are_strided(self):
        layout = TreeMemoryLayout(n_points=100)
        assert layout.point_address(1) - layout.point_address(0) == POINT_STRIDE_BYTES
        assert layout.point_address(10) == layout.points_base + 10 * POINT_STRIDE_BYTES

    def test_index_addresses_are_strided(self):
        layout = TreeMemoryLayout(n_points=100)
        assert layout.index_entry_address(3) - layout.index_entry_address(2) == \
            INDEX_STRIDE_BYTES

    def test_node_addresses_are_strided(self):
        layout = TreeMemoryLayout(n_points=100)
        assert layout.node_address(5) - layout.node_address(4) == NODE_RECORD_BYTES

    def test_regions_do_not_overlap(self):
        layout = TreeMemoryLayout(n_points=1_000_000)
        regions = [
            (layout.point_address(0), layout.point_address(1_000_000)),
            (layout.index_entry_address(0), layout.index_entry_address(1_000_000)),
            (layout.node_address(0), layout.node_address(200_000)),
            (layout.compressed_address(0), layout.compressed_address(16_000_000)),
            (layout.flag_address(0), layout.flag_address(1_000_000)),
            (layout.queue_address(0), layout.queue_address(1_000_000)),
        ]
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_compressed_addresses_offset_from_base(self):
        layout = TreeMemoryLayout(n_points=10)
        assert layout.compressed_address(64) == layout.compressed_base + 64

    def test_point_stride_matches_pcl_pointxyz(self):
        # PointXYZ is four 32-bit floats (x, y, z, padding).
        assert POINT_STRIDE_BYTES == 16

    def test_flag_and_queue_addresses(self):
        layout = TreeMemoryLayout(n_points=10)
        assert layout.flag_address(5) == layout.flags_base + 5
        assert layout.queue_address(2) == layout.queue_base + 8
