"""Property-based edge tests of the shard plan/merge machinery.

The ``-mp`` backends rest on one invariant: *any* contiguous split of a
query batch, served shard by shard and merged in shard order, is bitwise
identical to serving the whole batch at once.  Hypothesis drives the split
through the edges a fixed unit test would miss — empty shard lists,
single-query batches, zero-hit queries, duplicate kNN distances, and shard
counts far beyond the query count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import get_backend
from repro.engine.parallel import (
    merge_knn_shards,
    merge_radius_shards,
    plan_shards,
)
from repro.kdtree import build_kdtree


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(17)
    points = rng.uniform(-6.0, 6.0, (300, 3)).astype(np.float32)
    # Duplicate a slab of points so kNN distance ties actually occur.
    points[150:180] = points[0:30]
    queries = np.vstack([
        points[:50].astype(np.float64) + rng.normal(0.0, 0.2, (50, 3)),
        rng.uniform(40.0, 50.0, (6, 3)),  # far away: zero radius hits
    ])
    tree = build_kdtree(points)
    return tree, queries, get_backend("baseline-batched", tree)


def _split_points(n: int, draw_bounds):
    """Interior cut points -> contiguous disjoint [start, stop) ranges."""
    bounds = sorted(set([0, n] + draw_bounds))
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


class TestPlanShards:
    @given(n_queries=st.integers(min_value=-3, max_value=200),
           n_shards=st.integers(min_value=-3, max_value=400))
    def test_plan_covers_batch_contiguously(self, n_queries, n_shards):
        shards = plan_shards(n_queries, n_shards)
        if n_queries < 1:
            assert shards == []
            return
        # Contiguous, disjoint, covering, never empty.
        assert shards[0][0] == 0 and shards[-1][1] == n_queries
        for (start, stop), (next_start, _) in zip(shards, shards[1:]):
            assert stop == next_start
        assert all(stop > start for start, stop in shards)
        # Clamped: never more shards than queries, never fewer than one.
        assert 1 <= len(shards) <= max(1, min(n_shards, n_queries))

    def test_shard_count_clamped_to_query_count(self):
        assert len(plan_shards(3, 16)) == 3
        assert plan_shards(1, 9) == [(0, 1)]
        assert plan_shards(5, 0) == [(0, 5)]
        assert plan_shards(0, 4) == []
        assert plan_shards(-2, 4) == []


class TestMergeRadiusShards:
    @settings(max_examples=40, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=1, max_value=55),
                         max_size=12))
    def test_any_contiguous_split_merges_bitwise(self, case, cuts):
        tree, queries, backend = case
        whole = backend.radius_search(queries, 0.45)
        ranges = _split_points(queries.shape[0], cuts)
        merged = merge_radius_shards(
            [backend.radius_search(queries[start:stop], 0.45)
             for start, stop in ranges])
        assert np.array_equal(merged.offsets, whole.offsets)
        assert np.array_equal(merged.point_indices, whole.point_indices)

    def test_empty_shard_list_is_an_empty_batch(self):
        merged = merge_radius_shards([])
        assert merged.n_queries == 0
        assert merged.offsets.shape == (1,)
        assert merged.point_indices.shape == (0,)

    def test_single_query_shards(self, case):
        tree, queries, backend = case
        whole = backend.radius_search(queries, 0.45)
        merged = merge_radius_shards(
            [backend.radius_search(queries[i:i + 1], 0.45)
             for i in range(queries.shape[0])])
        assert np.array_equal(merged.offsets, whole.offsets)
        assert np.array_equal(merged.point_indices, whole.point_indices)

    def test_zero_hit_shards_keep_offsets_aligned(self, case):
        tree, queries, backend = case
        # The last six queries are far outside the cloud: all-empty shard.
        empty = backend.radius_search(queries[-6:], 0.45)
        assert empty.total_matches == 0
        merged = merge_radius_shards(
            [backend.radius_search(queries[:-6], 0.45), empty])
        whole = backend.radius_search(queries, 0.45)
        assert np.array_equal(merged.offsets, whole.offsets)
        assert np.array_equal(merged.point_indices, whole.point_indices)


class TestMergeKnnShards:
    @settings(max_examples=40, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=1, max_value=55),
                         max_size=12),
           k=st.integers(min_value=1, max_value=6))
    def test_any_contiguous_split_merges_bitwise(self, case, cuts, k):
        tree, queries, backend = case
        whole = backend.knn(queries, k)
        ranges = _split_points(queries.shape[0], cuts)
        merged = merge_knn_shards(
            [backend.knn(queries[start:stop], k) for start, stop in ranges])
        assert np.array_equal(merged.indices, whole.indices)
        assert np.array_equal(merged.distances, whole.distances)

    def test_duplicate_distance_ties_survive_the_merge(self, case):
        """The fixture clones 30 points, so equidistant neighbours exist;
        tie order (by point index) must be shard-split invariant."""
        tree, queries, backend = case
        whole = backend.knn(queries, 4)
        merged = merge_knn_shards(
            [backend.knn(queries[i:i + 1], 4)
             for i in range(queries.shape[0])])
        assert np.array_equal(merged.indices, whole.indices)
        # Ties really happen: some query has two neighbours at one distance.
        has_tie = any(
            len(set(np.round(row[np.isfinite(row)], 10))) < np.sum(np.isfinite(row))
            for row in whole.distances)
        assert has_tie

    def test_single_shard_roundtrip(self, case):
        tree, queries, backend = case
        whole = backend.knn(queries, 3)
        merged = merge_knn_shards([whole])
        assert np.array_equal(merged.indices, whole.indices)
        assert np.array_equal(merged.distances, whole.distances)

    def test_empty_knn_shard_list_raises(self):
        """vstack of nothing is a contract violation, not a silent empty."""
        with pytest.raises(ValueError):
            merge_knn_shards([])

    def test_more_shards_than_queries_via_plan(self, case):
        """plan_shards clamps, so the planned split always merges clean."""
        tree, queries, backend = case
        whole = backend.radius_search(queries, 0.45)
        ranges = plan_shards(queries.shape[0], 10 * queries.shape[0])
        assert len(ranges) == queries.shape[0]
        merged = merge_radius_shards(
            [backend.radius_search(queries[start:stop], 0.45)
             for start, stop in ranges])
        assert np.array_equal(merged.offsets, whole.offsets)
        assert np.array_equal(merged.point_indices, whole.point_indices)
