"""Tests of the baseline radius search (traversal + 32-bit leaf inspection)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel.cache import HierarchyRecorder
from repro.kdtree import (
    RadiusSearcher,
    SearchStats,
    TreeMemoryLayout,
    build_kdtree,
    radius_search,
)


def _brute_force(points: np.ndarray, query, radius: float):
    diffs = points.astype(np.float64) - np.asarray(query, dtype=np.float64)
    d2 = np.einsum("ij,ij->i", diffs, diffs)
    return sorted(np.nonzero(d2 <= radius * radius)[0].tolist())


class TestCorrectness:
    def test_matches_brute_force_on_frame(self, frame_tree, filtered_frame):
        for i in range(0, len(filtered_frame), 149):
            query = filtered_frame[i]
            got = sorted(radius_search(frame_tree, query, 0.7))
            assert got == _brute_force(frame_tree.points, query, 0.7)

    def test_matches_brute_force_on_random_cloud(self, random_tree, random_cloud):
        for i in range(0, len(random_cloud), 97):
            for radius in (0.3, 1.0, 5.0):
                query = random_cloud[i]
                got = sorted(radius_search(random_tree, query, radius))
                assert got == _brute_force(random_tree.points, query, radius)

    def test_query_outside_cloud(self, random_tree):
        query = np.array([500.0, 500.0, 500.0])
        assert radius_search(random_tree, query, 1.0) == []

    def test_huge_radius_returns_everything(self, random_tree):
        query = np.array([0.0, 0.0, 0.0])
        got = radius_search(random_tree, query, 1e4)
        assert sorted(got) == list(range(random_tree.n_points))

    def test_query_on_point_includes_itself(self, random_tree, random_cloud):
        got = radius_search(random_tree, random_cloud[7], 0.05)
        assert 7 in got

    def test_invalid_radius_rejected(self, random_tree):
        with pytest.raises(ValueError):
            radius_search(random_tree, [0, 0, 0], 0.0)

    def test_invalid_query_rejected(self, random_tree):
        with pytest.raises(ValueError):
            radius_search(random_tree, [0, 0], 1.0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_points=st.integers(min_value=1, max_value=300),
        radius=st.floats(min_value=0.05, max_value=30.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force_property(self, seed, n_points, radius):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-20, 20, size=(n_points, 3)).astype(np.float32)
        tree = build_kdtree(points)
        query = rng.uniform(-25, 25, size=3)
        got = sorted(radius_search(tree, query, radius))
        assert got == _brute_force(points, query, radius)


class TestStats:
    def test_stats_accumulate(self, frame_tree, filtered_frame):
        stats = SearchStats()
        for i in range(0, len(filtered_frame), 211):
            radius_search(frame_tree, filtered_frame[i], 0.6, stats=stats)
        assert stats.queries == len(range(0, len(filtered_frame), 211))
        assert stats.leaves_visited > 0
        assert stats.points_examined >= stats.points_in_radius
        assert stats.point_bytes_loaded == stats.points_examined * 16

    def test_leaf_visit_counts(self, frame_tree, filtered_frame):
        stats = SearchStats()
        for i in range(0, len(filtered_frame), 31):
            radius_search(frame_tree, filtered_frame[i], 0.6, stats=stats)
        assert sum(stats.leaf_visit_counts.values()) == stats.leaves_visited
        assert stats.mean_visits_per_leaf >= 1.0

    def test_merge(self):
        a = SearchStats(queries=1, leaves_visited=2, points_examined=10,
                        leaf_visit_counts={0: 2})
        b = SearchStats(queries=2, leaves_visited=3, points_examined=5,
                        leaf_visit_counts={0: 1, 1: 2})
        a.merge(b)
        assert a.queries == 3
        assert a.leaves_visited == 5
        assert a.leaf_visit_counts == {0: 3, 1: 2}

    def test_radius_searcher_accumulates(self, frame_tree, filtered_frame):
        searcher = RadiusSearcher(frame_tree)
        for i in range(0, len(filtered_frame), 301):
            searcher.search(filtered_frame[i], 0.6)
        assert searcher.stats.queries >= 2

    def test_empty_stats_mean_visits(self):
        assert SearchStats().mean_visits_per_leaf == 0.0


class TestPruning:
    def test_small_radius_visits_few_leaves(self, frame_tree, filtered_frame):
        stats = SearchStats()
        radius_search(frame_tree, filtered_frame[0], 0.1, stats=stats)
        assert stats.leaves_visited < frame_tree.n_leaves / 4

    def test_larger_radius_visits_more_leaves(self, frame_tree, filtered_frame):
        query = filtered_frame[len(filtered_frame) // 2]
        small, large = SearchStats(), SearchStats()
        radius_search(frame_tree, query, 0.2, stats=small)
        radius_search(frame_tree, query, 8.0, stats=large)
        assert large.leaves_visited > small.leaves_visited
        assert large.points_examined > small.points_examined

    def test_covering_radius_visits_every_leaf(self, frame_tree, filtered_frame):
        stats = SearchStats()
        radius_search(frame_tree, filtered_frame[0], 500.0, stats=stats)
        assert stats.leaves_visited == frame_tree.n_leaves

    def test_points_examined_less_than_total_for_small_radius(self, frame_tree,
                                                              filtered_frame):
        stats = SearchStats()
        radius_search(frame_tree, filtered_frame[5], 0.3, stats=stats)
        assert stats.points_examined < frame_tree.n_points


class TestMemoryRecording:
    def test_recorder_receives_accesses(self, random_tree, random_cloud):
        recorder = HierarchyRecorder()
        layout = TreeMemoryLayout(n_points=random_tree.n_points)
        radius_search(random_tree, random_cloud[0], 1.0, recorder=recorder, layout=layout)
        assert recorder.stats.loads > 0
        assert recorder.stats.bytes_loaded > 0

    def test_no_recorder_no_error(self, random_tree, random_cloud):
        assert isinstance(radius_search(random_tree, random_cloud[0], 1.0), list)

    def test_point_loads_counted_in_bytes(self, random_tree, random_cloud):
        recorder = HierarchyRecorder()
        layout = TreeMemoryLayout(n_points=random_tree.n_points)
        stats = SearchStats()
        radius_search(random_tree, random_cloud[0], 1.0, stats=stats,
                      recorder=recorder, layout=layout)
        # Every examined point contributes one 16-byte load plus a 4-byte index load.
        assert recorder.stats.bytes_loaded >= stats.points_examined * 20
