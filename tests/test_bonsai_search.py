"""Tests of the compressed (Bonsai) radius search.

The central property — the one the paper's safety argument rests on — is that
the Bonsai search returns *exactly* the same point set as the baseline 32-bit
search, for any cloud and any query.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bonsai_search import BonsaiLeafInspector, BonsaiRadiusSearch
from repro.core.compressed_leaf import compress_tree
from repro.kdtree import (
    KDTreeConfig,
    SearchStats,
    TreeMemoryLayout,
    build_kdtree,
    radius_search,
)
from repro.hwmodel.cache import HierarchyRecorder


class TestEquivalenceWithBaseline:
    def test_identical_results_on_frame(self, frame_tree, filtered_frame):
        tree = build_kdtree(filtered_frame)
        bonsai = BonsaiRadiusSearch(tree)
        for i in range(0, len(filtered_frame), 37):
            query = filtered_frame[i]
            expected = sorted(radius_search(tree, query, 0.6))
            got = sorted(bonsai.search(query, 0.6))
            assert got == expected

    def test_identical_results_various_radii(self, random_tree, random_cloud):
        tree = build_kdtree(random_cloud)
        bonsai = BonsaiRadiusSearch(tree)
        for radius in (0.1, 0.5, 1.0, 3.0, 10.0):
            for i in range(0, len(random_cloud), 101):
                query = random_cloud[i]
                assert sorted(bonsai.search(query, radius)) == sorted(
                    radius_search(tree, query, radius)
                )

    def test_query_not_in_cloud(self, random_cloud):
        tree = build_kdtree(random_cloud)
        bonsai = BonsaiRadiusSearch(tree)
        query = np.array([3.3, -7.7, 0.2])
        assert sorted(bonsai.search(query, 2.0)) == sorted(radius_search(tree, query, 2.0))

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_points=st.integers(min_value=5, max_value=150),
        radius=st.floats(min_value=0.05, max_value=8.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_property(self, seed, n_points, radius):
        rng = np.random.default_rng(seed)
        n_clusters = max(1, n_points // 20)
        centers = rng.uniform(-60, 60, size=(n_clusters, 3))
        points = np.vstack([
            centers[i % n_clusters] + rng.normal(0.0, 0.8, size=3) for i in range(n_points)
        ]).astype(np.float32)
        tree = build_kdtree(points)
        bonsai = BonsaiRadiusSearch(tree)
        brute = None
        for qi in range(0, n_points, max(1, n_points // 7)):
            query = points[qi]
            baseline = sorted(radius_search(tree, query, radius))
            got = sorted(bonsai.search(query, radius))
            assert got == baseline
            # Cross-check the baseline itself against brute force.
            diffs = points.astype(np.float64) - query.astype(np.float64)
            d2 = np.einsum("ij,ij->i", diffs, diffs)
            brute = sorted(np.nonzero(d2 <= radius * radius)[0].tolist())
            assert baseline == brute


class TestBonsaiCounters:
    def test_recompute_rate_is_small_on_frames(self, filtered_frame):
        """The paper reports 0.37% of classifications fall in the shell."""
        tree = build_kdtree(filtered_frame)
        bonsai = BonsaiRadiusSearch(tree)
        for i in range(0, len(filtered_frame), 11):
            bonsai.search(filtered_frame[i], 0.6)
        stats = bonsai.bonsai_stats
        assert stats.points_classified > 0
        assert stats.inconclusive_rate < 0.02

    def test_counter_consistency(self, filtered_frame):
        tree = build_kdtree(filtered_frame)
        bonsai = BonsaiRadiusSearch(tree)
        for i in range(0, len(filtered_frame), 53):
            bonsai.search(filtered_frame[i], 0.6)
        stats = bonsai.bonsai_stats
        assert stats.conclusive_in + stats.conclusive_out + stats.inconclusive == \
            stats.points_classified
        assert stats.compressed_bytes_loaded == stats.slices_loaded * 16
        assert stats.total_point_bytes_loaded >= stats.compressed_bytes_loaded

    def test_bytes_loaded_less_than_baseline(self, filtered_frame):
        """Figure 9b: compressed leaf fetches move far fewer bytes."""
        tree = build_kdtree(filtered_frame)
        baseline_stats = SearchStats()
        for i in range(0, len(filtered_frame), 13):
            radius_search(tree, filtered_frame[i], 0.6, stats=baseline_stats)
        bonsai = BonsaiRadiusSearch(tree)
        for i in range(0, len(filtered_frame), 13):
            bonsai.search(filtered_frame[i], 0.6)
        assert bonsai.stats.point_bytes_loaded < 0.6 * baseline_stats.point_bytes_loaded

    def test_existing_compressed_array_reused(self, random_cloud):
        tree = build_kdtree(random_cloud)
        compress_tree(tree)
        bonsai = BonsaiRadiusSearch(tree)
        assert bonsai.report is None  # compression not repeated
        query = random_cloud[0]
        assert sorted(bonsai.search(query, 1.0)) == sorted(radius_search(tree, query, 1.0))


class TestBonsaiLeafInspectorFallback:
    def test_uncompressed_tree_falls_back_to_baseline(self, random_cloud):
        tree = build_kdtree(random_cloud)  # never compressed
        inspector = BonsaiLeafInspector()
        stats = SearchStats()
        query = random_cloud[5]
        got = radius_search(tree, query, 1.5, inspector=inspector, stats=stats)
        assert sorted(got) == sorted(radius_search(tree, query, 1.5))
        assert inspector.bonsai_stats.fallback_leaf_visits > 0
        assert inspector.bonsai_stats.leaf_visits == 0

    def test_cache_disabled_still_correct(self, random_cloud):
        tree = build_kdtree(random_cloud)
        compress_tree(tree)
        inspector = BonsaiLeafInspector(cache_decoded=False)
        stats = SearchStats()
        query = random_cloud[10]
        got = radius_search(tree, query, 1.0, inspector=inspector, stats=stats)
        assert sorted(got) == sorted(radius_search(tree, query, 1.0))


class TestBonsaiWithRecorder:
    def test_recorder_sees_compressed_and_recompute_loads(self, filtered_frame):
        tree = build_kdtree(filtered_frame)
        layout = TreeMemoryLayout(n_points=tree.n_points)
        recorder = HierarchyRecorder()
        bonsai = BonsaiRadiusSearch(tree, recorder=recorder, layout=layout)
        searcher_recorder_stats_before = recorder.stats.loads
        for i in range(0, len(filtered_frame), 29):
            bonsai.search(filtered_frame[i], 0.6)
        assert recorder.stats.loads > searcher_recorder_stats_before
        assert recorder.stats.l1_accesses > 0

    def test_compression_pass_traced(self, filtered_frame):
        tree = build_kdtree(filtered_frame)
        layout = TreeMemoryLayout(n_points=tree.n_points)
        recorder = HierarchyRecorder()
        BonsaiRadiusSearch(tree, recorder=recorder, layout=layout)
        # The compression pass loads every point once and stores the slices.
        assert recorder.stats.loads >= tree.n_points
        assert recorder.stats.stores > 0
