"""Tests of the NDT localization workload with cost accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import LocalizationConfig, NDTLocalizationPipeline


@pytest.fixture(scope="module")
def localization_frames(small_sequence):
    map_cloud = small_sequence.frame(0)
    scans = [small_sequence.frame(i) for i in range(1, 3)]
    return map_cloud, scans


@pytest.fixture(scope="module")
def measurements(localization_frames):
    map_cloud, scans = localization_frames
    baseline = NDTLocalizationPipeline(map_cloud, use_bonsai=False)
    bonsai = NDTLocalizationPipeline(map_cloud, use_bonsai=True)
    initials = [(0.8 * (i + 1) - 0.3, 0.0, 0.0) for i in range(len(scans))]
    return (baseline.register_sequence(scans, initials),
            bonsai.register_sequence(scans, initials))


class TestLocalizationPipeline:
    def test_measurement_fields(self, measurements):
        baseline, _ = measurements
        m = baseline[0]
        assert m.instructions > 0
        assert m.loads > 0
        assert m.seconds > 0
        assert m.energy_j > 0
        assert m.iterations >= 1
        assert m.translation.shape == (3,)

    def test_bonsai_reduces_bytes_and_cost(self, measurements):
        """The paper's claim that NDT matching also benefits from K-D Bonsai."""
        baseline, bonsai = measurements
        for base, new in zip(baseline, bonsai):
            assert new.point_bytes_loaded < 0.6 * base.point_bytes_loaded
            assert new.loads < base.loads
            assert new.seconds < base.seconds
            assert new.energy_j < base.energy_j

    def test_identical_pose_estimates(self, measurements):
        """Radius-search results are identical, so the optimiser's output is too."""
        baseline, bonsai = measurements
        for base, new in zip(baseline, bonsai):
            np.testing.assert_allclose(new.translation, base.translation, atol=1e-9)
            assert new.iterations == base.iterations

    def test_scan_indices_preserved(self, measurements):
        baseline, _ = measurements
        assert [m.scan_index for m in baseline] == list(range(len(baseline)))

    def test_custom_config(self, localization_frames):
        map_cloud, scans = localization_frames
        config = LocalizationConfig()
        pipeline = NDTLocalizationPipeline(map_cloud, config=config, use_bonsai=False)
        measurement = pipeline.register_scan(scans[0], initial_translation=(0.5, 0.0, 0.0))
        assert measurement.use_bonsai is False
