"""Tests of the workload pipelines: euclidean-cluster harness, profiling, sub-sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import (
    DrivingSequence,
    LidarConfig,
    SceneConfig,
    SequenceConfig,
)
from repro.workloads import (
    EuclideanClusterPipeline,
    PipelineConfig,
    evaluate_subsampling,
    measure_sequence,
    profile_euclidean_cluster,
    profile_ndt_matching,
)


@pytest.fixture(scope="module")
def tiny_sequence():
    """A very small sequence so pipeline tests stay quick."""
    return DrivingSequence(SequenceConfig(
        n_frames=4,
        scene=SceneConfig(seed=3),
        lidar=LidarConfig(n_beams=16, n_azimuth_steps=180, seed=31),
    ))


@pytest.fixture(scope="module")
def pipeline():
    return EuclideanClusterPipeline()


@pytest.fixture(scope="module")
def baseline_and_bonsai(tiny_sequence, pipeline):
    clouds = [tiny_sequence.frame(i) for i in range(2)]
    baseline = pipeline.run_frames(clouds, use_bonsai=False)
    bonsai = pipeline.run_frames(clouds, use_bonsai=True)
    return baseline, bonsai


class TestPipeline:
    def test_frame_measurement_fields(self, baseline_and_bonsai):
        baseline, bonsai = baseline_and_bonsai
        m = baseline[0]
        assert m.n_raw_points > m.n_filtered_points > 0
        assert m.n_clusters > 0
        assert m.extract.instructions > 0
        assert m.extract.seconds > 0
        assert m.end_to_end_seconds > m.extract.seconds
        assert m.extract.energy_j > 0
        assert baseline[0].bonsai_stats is None
        assert bonsai[0].bonsai_stats is not None

    def test_bonsai_reduces_first_order_metrics(self, baseline_and_bonsai):
        """Figure 9a directions on the extract kernel."""
        baseline, bonsai = baseline_and_bonsai
        for base, new in zip(baseline, bonsai):
            assert new.extract.loads < base.extract.loads
            assert new.extract.instructions < base.extract.instructions
            assert new.extract.seconds < base.extract.seconds
            assert new.extract.energy_j < base.extract.energy_j
            assert new.end_to_end_seconds < base.end_to_end_seconds

    def test_bonsai_reduces_point_bytes(self, baseline_and_bonsai):
        """Figure 9b direction: far fewer bytes to fetch leaf points."""
        baseline, bonsai = baseline_and_bonsai
        for base, new in zip(baseline, bonsai):
            assert new.point_bytes_loaded < 0.6 * base.point_bytes_loaded

    def test_cluster_count_identical_between_configs(self, baseline_and_bonsai):
        baseline, bonsai = baseline_and_bonsai
        for base, new in zip(baseline, bonsai):
            assert base.n_clusters == new.n_clusters

    def test_compression_report_attached(self, baseline_and_bonsai):
        _, bonsai = baseline_and_bonsai
        assert bonsai[0].compressed_total_bytes is not None
        assert bonsai[0].baseline_point_bytes is not None
        assert bonsai[0].compressed_total_bytes < bonsai[0].baseline_point_bytes

    def test_cache_simulation_can_be_disabled(self, tiny_sequence):
        pipeline = EuclideanClusterPipeline(PipelineConfig(simulate_caches=False))
        measurement = pipeline.run_frame(tiny_sequence.frame(0))
        assert measurement.extract.l1_accesses > 0

    def test_run_frames_indices(self, tiny_sequence, pipeline):
        clouds = [tiny_sequence.frame(i) for i in range(2)]
        measurements = pipeline.run_frames(clouds)
        assert [m.frame_index for m in measurements] == [0, 1]


class TestProfiles:
    def test_euclidean_cluster_share_dominant(self, tiny_sequence):
        """Figure 2: radius search dominates the euclidean-cluster task (~61%)."""
        share = profile_euclidean_cluster(tiny_sequence.frame(0))
        assert 0.35 < share.radius_search_share < 0.9
        assert share.total_cycles > 0

    def test_ndt_share_significant(self, tiny_sequence):
        """Figure 2: radius search is ~51% of NDT matching."""
        map_cloud = tiny_sequence.frame(0)
        scan = tiny_sequence.frame(1)
        share = profile_ndt_matching(scan, map_cloud)
        assert 0.25 < share.radius_search_share < 0.9

    def test_share_fields(self, tiny_sequence):
        share = profile_euclidean_cluster(tiny_sequence.frame(0))
        assert share.task.startswith("Euclidean")
        assert share.radius_search_cycles + share.other_cycles == share.total_cycles


class TestSubsampling:
    def test_measure_sequence_subset(self, tiny_sequence, pipeline):
        measurements = measure_sequence(tiny_sequence, indices=[0, 2], pipeline=pipeline)
        assert [m.frame_index for m in measurements] == [0, 2]

    def test_subsampling_errors_are_small(self, tiny_sequence, pipeline):
        """Table III: systematic sub-sampling tracks the full-sequence metrics."""
        errors = evaluate_subsampling(tiny_sequence, n_samples=2, sample_length=1,
                                      pipeline=pipeline)
        assert errors.n_full_frames == len(tiny_sequence)
        assert errors.n_sampled_frames == 2
        assert 0.0 <= errors.latency_mean_error < 0.25
        assert 0.0 <= errors.ipc_relative_error < 0.25
        assert 0.0 <= errors.l1_miss_ratio_difference < 0.05
        rows = errors.as_rows()
        assert len(rows) == 4


class TestPipelineRunner:
    """Unit behaviour of the end-to-end runner (golden tests cover outcomes)."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.workloads import PipelineRunner

        return PipelineRunner.from_scenario(
            "urban", n_frames=3, seed=3, n_beams=14, n_azimuth_steps=120).run()

    def test_one_record_per_selected_frame(self, result):
        assert [f.frame_index for f in result.frames] == result.frame_indices
        assert len(result.measurements) == len(result.frames)

    def test_detections_flow_into_tracking(self, result):
        assert all(f.n_detections_kept <= f.n_clusters for f in result.frames)
        assert result.confirmed_tracks_final == result.frames[-1].n_confirmed_tracks
        assert sum(result.track_labels.values()) == result.confirmed_tracks_final

    def test_search_stats_aggregate_over_frames(self, result):
        total_queries = sum(m.search_stats.queries for m in result.measurements)
        assert result.cluster_search.queries == total_queries
        # Every filtered point is searched exactly once by cluster growth.
        assert total_queries == sum(f.n_filtered_points for f in result.frames)

    def test_localization_against_ground_truth(self, result):
        assert result.localization is not None
        assert result.localization.n_scans == 2
        assert 0.0 <= result.localization.mean_error_m \
            <= result.localization.max_error_m < 2.0
        assert result.localization.iterations_total >= 2

    def test_metrics_are_json_serialisable_and_stage_free(self, result):
        import json

        metrics = json.loads(json.dumps(result.metrics()))
        assert "stage_seconds" not in metrics  # wall clock never in golden data
        assert metrics["scenario"] == "urban"
        assert metrics["cluster_search"]["queries"] == result.cluster_search.queries

    def test_n_frames_caps_at_sequence_length(self):
        from repro.workloads import PipelineRunner, PipelineRunnerConfig

        config = PipelineRunnerConfig(n_frames=99, localization=False)
        runner = PipelineRunner.from_scenario(
            "urban", config=config, n_frames=2, n_beams=10, n_azimuth_steps=72)
        assert runner._select_frames() == [0, 1]

    def test_subsample_selects_systematic_windows(self):
        from repro.workloads import PipelineRunner, PipelineRunnerConfig

        config = PipelineRunnerConfig(subsample=(2, 1), localization=False)
        runner = PipelineRunner.from_scenario(
            "urban", config=config, n_frames=6, n_beams=10, n_azimuth_steps=72)
        assert runner._select_frames() == [0, 3]

    def test_bonsai_runner_collects_bonsai_stats(self):
        from repro.workloads import PipelineRunner

        result = PipelineRunner.from_scenario(
            "urban", n_frames=2, seed=3, n_beams=12, n_azimuth_steps=90,
            use_bonsai=True).run()
        assert result.cluster_bonsai is not None
        assert result.cluster_bonsai.leaf_visits > 0
        assert result.metrics()["cluster_bonsai"]["points_classified"] > 0

    def test_from_scenario_never_mutates_caller_config(self):
        from repro.workloads import PipelineRunner, PipelineRunnerConfig

        shared = PipelineRunnerConfig()
        runner = PipelineRunner.from_scenario(
            "urban", config=shared, use_bonsai=True,
            n_frames=1, n_beams=8, n_azimuth_steps=64)
        assert runner.config.execution.use_bonsai is True
        assert shared.execution.use_bonsai is False
