"""Tests of the simplified NDT registration workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import NDTConfig, NDTMap, NDTMatcher
from repro.pointcloud import PointCloud


@pytest.fixture(scope="module")
def structured_map_cloud():
    """A map cloud with enough structure for NDT to localise against."""
    rng = np.random.default_rng(42)
    walls = []
    # Two walls and a line of posts: surfaces with distinct gradients.
    xs = rng.uniform(-30, 30, 2500)
    walls.append(np.column_stack([xs, np.full_like(xs, 8.0) + rng.normal(0, 0.05, xs.size),
                                  rng.uniform(-1.5, 2.0, xs.size)]))
    ys = rng.uniform(-8, 8, 2000)
    walls.append(np.column_stack([np.full_like(ys, 20.0) + rng.normal(0, 0.05, ys.size), ys,
                                  rng.uniform(-1.5, 2.0, ys.size)]))
    posts_x = np.repeat(np.arange(-25, 26, 5.0), 60)
    walls.append(np.column_stack([posts_x + rng.normal(0, 0.03, posts_x.size),
                                  np.full_like(posts_x, -6.0) + rng.normal(0, 0.03, posts_x.size),
                                  rng.uniform(-1.5, 1.5, posts_x.size)]))
    return PointCloud(np.vstack(walls).astype(np.float32))


class TestNDTMap:
    def test_map_builds_voxels(self, structured_map_cloud):
        ndt_map = NDTMap(structured_map_cloud, NDTConfig(voxel_size=2.0))
        assert len(ndt_map.voxels) > 10
        assert ndt_map.tree.n_points == len(ndt_map.voxels)

    def test_voxel_gaussians_are_valid(self, structured_map_cloud):
        ndt_map = NDTMap(structured_map_cloud, NDTConfig(voxel_size=2.0))
        for voxel in ndt_map.voxels[:50]:
            assert voxel.n_points >= ndt_map.config.min_points_per_voxel
            eigvals = np.linalg.eigvalsh(voxel.covariance)
            assert np.all(eigvals > 0)
            identity = voxel.covariance @ voxel.inverse_covariance
            np.testing.assert_allclose(identity, np.eye(3), atol=1e-6)

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            NDTMap(PointCloud())

    def test_sparse_map_without_voxels_rejected(self):
        cloud = PointCloud(np.array([[0, 0, 0], [100, 100, 100]], dtype=np.float32))
        with pytest.raises(ValueError):
            NDTMap(cloud, NDTConfig(voxel_size=1.0, min_points_per_voxel=4))


class TestNDTRegistration:
    def test_recovers_small_translation(self, structured_map_cloud):
        ndt_map = NDTMap(structured_map_cloud, NDTConfig(voxel_size=2.0, max_iterations=25,
                                                         max_scan_points=300))
        matcher = NDTMatcher(ndt_map)
        true_offset = np.array([0.4, -0.3, 0.0])
        scan = structured_map_cloud.translated(-true_offset)
        result = matcher.register(scan, initial_translation=(0.0, 0.0, 0.0))
        np.testing.assert_allclose(result.translation[:2], true_offset[:2], atol=0.25)

    def test_identity_registration_stays_near_zero(self, structured_map_cloud):
        ndt_map = NDTMap(structured_map_cloud, NDTConfig(voxel_size=2.0, max_iterations=10,
                                                         max_scan_points=200))
        matcher = NDTMatcher(ndt_map)
        result = matcher.register(structured_map_cloud)
        assert np.linalg.norm(result.translation) < 0.2

    def test_search_stats_accumulate(self, structured_map_cloud):
        ndt_map = NDTMap(structured_map_cloud, NDTConfig(voxel_size=2.0, max_iterations=3,
                                                         max_scan_points=100))
        matcher = NDTMatcher(ndt_map)
        matcher.register(structured_map_cloud)
        stats = matcher.search_stats
        assert stats.queries > 0
        assert stats.points_examined > 0

    def test_bonsai_matcher_gives_same_score_trajectory(self, structured_map_cloud):
        config = NDTConfig(voxel_size=2.0, max_iterations=5, max_scan_points=150)
        ndt_map = NDTMap(structured_map_cloud, config)
        scan = structured_map_cloud.translated([-0.3, 0.2, 0.0])
        baseline = NDTMatcher(ndt_map, use_bonsai=False).register(scan)
        bonsai = NDTMatcher(NDTMap(structured_map_cloud, config), use_bonsai=True).register(scan)
        # Radius search results are identical, so the optimisation trajectory is too.
        np.testing.assert_allclose(bonsai.translation, baseline.translation, atol=1e-9)
        assert bonsai.final_score == pytest.approx(baseline.final_score)

    def test_result_fields(self, structured_map_cloud):
        ndt_map = NDTMap(structured_map_cloud, NDTConfig(voxel_size=2.0, max_iterations=2,
                                                         max_scan_points=80))
        result = NDTMatcher(ndt_map).register(structured_map_cloud)
        assert result.iterations >= 1
        assert result.final_score > 0.0
