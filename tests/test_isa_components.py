"""Tests of the ISA building blocks: memory, register files, ZipPts buffer, FUs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.error_model import max_eps_sd
from repro.core.floatfmt import FLOAT16
from repro.core.leaf_compression import ZIPPTS_SLICE_BYTES, compress_leaf
from repro.isa import (
    FU_LANES,
    ScalarRegisterFile,
    SparseMemory,
    SquareDiffErrorFU,
    VectorRegisterFile,
    VectorSquareDiffUnit,
    ZipPtsBuffer,
)


class TestSparseMemory:
    def test_read_write_roundtrip(self):
        memory = SparseMemory()
        memory.write(0x1000, b"\x01\x02\x03")
        assert memory.read(0x1000, 3) == b"\x01\x02\x03"

    def test_unwritten_memory_reads_zero(self):
        assert SparseMemory().read(0x5000, 4) == b"\x00\x00\x00\x00"

    def test_cross_page_access(self):
        memory = SparseMemory()
        memory.write(4094, b"\xaa\xbb\xcc\xdd")
        assert memory.read(4094, 4) == b"\xaa\xbb\xcc\xdd"

    def test_float32_roundtrip(self):
        memory = SparseMemory()
        memory.write_float32(0x100, -3.25)
        assert memory.read_float32(0x100) == -3.25

    def test_point_roundtrip(self):
        memory = SparseMemory()
        memory.write_point_fp32(0x200, (1.5, -2.5, 3.5))
        np.testing.assert_array_equal(memory.read_point_fp32(0x200), [1.5, -2.5, 3.5])

    def test_points_array_layout(self):
        memory = SparseMemory()
        written = memory.write_points_fp32(0x0, [(1, 1, 1), (2, 2, 2)], stride=16)
        assert written == 32
        np.testing.assert_array_equal(memory.read_point_fp32(16), [2, 2, 2])

    def test_counters(self):
        memory = SparseMemory()
        memory.write(0, b"\x00" * 8)
        memory.read(0, 8)
        assert memory.counters.loads == 1
        assert memory.counters.stores == 1
        assert memory.counters.bytes_loaded == 8
        assert memory.counters.bytes_stored == 8
        memory.counters.reset()
        assert memory.counters.loads == 0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            SparseMemory().read(-1, 4)


class TestRegisterFiles:
    def test_f16_lane_roundtrip(self):
        regs = VectorRegisterFile()
        regs.write_f16_lanes(3, [1.0, -2.0, 0.5, 4.0])
        lanes = regs.read_f16_lanes(3)
        np.testing.assert_array_equal(lanes[:4], [1.0, -2.0, 0.5, 4.0])
        np.testing.assert_array_equal(lanes[4:], np.zeros(4))

    def test_f32_lane_roundtrip(self):
        regs = VectorRegisterFile()
        regs.write_f32_lanes(0, [1.25, 2.5, 3.75, -4.0])
        np.testing.assert_array_equal(regs.read_f32_lanes(0), [1.25, 2.5, 3.75, -4.0])

    def test_register_is_128_bits(self):
        regs = VectorRegisterFile()
        assert len(regs.read_raw(0)) == 16

    def test_too_many_lanes_rejected(self):
        regs = VectorRegisterFile()
        with pytest.raises(ValueError):
            regs.write_f16_lanes(0, list(range(9)))
        with pytest.raises(ValueError):
            regs.write_f32_lanes(0, list(range(5)))

    def test_out_of_range_register_rejected(self):
        regs = VectorRegisterFile(n_registers=4)
        with pytest.raises(IndexError):
            regs.read_f32_lanes(4)

    def test_scalar_registers(self):
        regs = ScalarRegisterFile()
        regs.write(5, 0xDEADBEEF)
        assert regs.read(5) == 0xDEADBEEF
        with pytest.raises(IndexError):
            regs.read(99)


class TestZipPtsBuffer:
    def test_load_point_converts_to_fp16(self):
        buffer = ZipPtsBuffer()
        buffer.load_point(0, (1.0005, -2.0, 3.0))
        stored = buffer.points(1)[0]
        assert stored[0] == FLOAT16.round_trip(1.0005)
        assert stored[1] == -2.0

    def test_capacity(self):
        buffer = ZipPtsBuffer()
        assert buffer.capacity == 16
        with pytest.raises(IndexError):
            buffer.load_point(16, (0, 0, 0))

    def test_compress_requires_filled_slots(self):
        buffer = ZipPtsBuffer()
        buffer.load_point(0, (1, 1, 1))
        with pytest.raises(ValueError):
            buffer.compress(2)

    def test_compress_decompress_roundtrip(self, rng):
        buffer = ZipPtsBuffer()
        points = (np.array([30.0, -12.0, 1.0])
                  + rng.normal(0, 0.3, size=(10, 3))).astype(np.float32)
        for i, point in enumerate(points):
            buffer.load_point(i, point)
        compressed = buffer.compress(10)
        assert compressed.data == compress_leaf(points).data

        fresh = ZipPtsBuffer()
        fresh.load_compressed(compressed.data, n_points=10)
        values = fresh.decompress()
        np.testing.assert_array_equal(values, points.astype(np.float16).astype(np.float64))

    def test_compressed_slices_partition_data(self, rng):
        buffer = ZipPtsBuffer()
        points = (np.array([5.0, 5.0, 1.0])
                  + rng.normal(0, 0.1, size=(15, 3))).astype(np.float32)
        for i, point in enumerate(points):
            buffer.load_point(i, point)
        compressed = buffer.compress(15)
        slices = buffer.compressed_slices()
        assert len(slices) == compressed.n_slices
        assert b"".join(slices) == compressed.data
        assert all(len(s) == ZIPPTS_SLICE_BYTES for s in slices)

    def test_load_compressed_rejects_partial_slice(self):
        buffer = ZipPtsBuffer()
        with pytest.raises(ValueError):
            buffer.load_compressed(b"\x00" * 17, n_points=1)

    def test_decompress_without_content_rejected(self):
        with pytest.raises(ValueError):
            ZipPtsBuffer().decompress()

    def test_clear(self, rng):
        buffer = ZipPtsBuffer()
        buffer.load_point(0, (1, 2, 3))
        buffer.clear()
        assert buffer.n_points == 0

    def test_max_slices(self):
        # 16 points x 3 coords x 16 bits + 3 flag bits = 771 bits -> 97 B -> 7 slices.
        assert ZipPtsBuffer().max_slices() == 7


class TestSquareDiffFU:
    def test_square_difference_value(self):
        fu = SquareDiffErrorFU()
        sq, err = fu.compute(3.0, 1.0)
        assert sq == 4.0
        assert err >= 0.0

    def test_error_matches_eq9(self):
        from repro.core.error_model import max_delta

        fu = SquareDiffErrorFU()
        a, b_reduced = 10.0, FLOAT16.round_trip(7.3)
        _, err = fu.compute(a, b_reduced)
        delta = max_delta(b_reduced)
        diff = abs(float(np.float32(a)) - float(np.float32(b_reduced)))
        expected = 2.0 * diff * delta + delta * delta
        assert err == pytest.approx(expected, rel=1e-6)

    def test_error_agrees_with_library_bound(self):
        fu = SquareDiffErrorFU()
        a, b = 55.0, 54.2
        b_reduced = FLOAT16.round_trip(b)
        _, err = fu.compute(a, b_reduced)
        assert err == pytest.approx(max_eps_sd(a, b_reduced), rel=1e-5)

    def test_activity_counters(self):
        fu = SquareDiffErrorFU()
        fu.compute(1.0, 1.0)
        fu.compute(2.0, 1.0)
        assert fu.activity.operations == 2
        assert fu.activity.table_lookups == 2

    def test_vector_unit_low_and_high(self):
        unit = VectorSquareDiffUnit()
        v_a = [1.0, 1.0, 1.0, 1.0]
        v_b = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        sq_low, err_low = unit.compute_half(v_a, v_b, high=False)
        sq_high, err_high = unit.compute_half(v_a, v_b, high=True)
        np.testing.assert_allclose(sq_low, [1.0, 0.25, 0.0, 1.0])
        np.testing.assert_allclose(sq_high, [4.0, 9.0, 16.0, 25.0])
        assert np.all(err_low >= 0) and np.all(err_high >= 0)
        assert unit.total_operations == 8

    def test_vector_unit_lane_count_enforced(self):
        unit = VectorSquareDiffUnit()
        with pytest.raises(ValueError):
            unit.compute_half([1.0] * 3, [0.0] * 8, high=False)
        with pytest.raises(ValueError):
            unit.compute_half([1.0] * 4, [0.0] * 7, high=False)

    def test_fu_lanes_constant(self):
        assert FU_LANES == 4
