"""Documentation lockdown: architecture doc matches the code, links resolve.

The acceptance contract of ``docs/ARCHITECTURE.md`` is that its described
module layout matches ``src/repro/`` *exactly*.  These tests enforce it —
and check that every relative markdown link in the first-class docs resolves
— so the docs-lint CI step fails the moment code and docs drift apart.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
PERFORMANCE = REPO / "docs" / "PERFORMANCE.md"
LINT = REPO / "docs" / "LINT.md"
TRENDS = REPO / "docs" / "TRENDS.md"
README = REPO / "README.md"
SRC = REPO / "src" / "repro"

#: Relative markdown links: [text](target), excluding http(s) and anchors.
LINK_RE = re.compile(r"\[[^\]]*\]\((?!https?://|#)([^)#\s]+)")


def _doc_tree_entries() -> set:
    """File names listed in the ARCHITECTURE.md module-tree code block."""
    text = ARCHITECTURE.read_text(encoding="utf-8")
    blocks = re.findall(r"```\n(src/repro\n.*?)```", text, flags=re.DOTALL)
    assert blocks, "ARCHITECTURE.md lost its `src/repro` module-tree block"
    entries = set()
    directories = [""]
    for line in blocks[0].splitlines()[1:]:
        stripped = line.replace("│", " ")
        match = re.match(r"^(\s*)(?:├──|└──)\s+(\S+)", stripped)
        if not match:
            continue
        indent, name = len(match.group(1)), match.group(2)
        depth = indent // 4 + 1
        directories = directories[:depth]
        if "." not in name:  # a package directory
            directories.append(name)
            continue
        prefix = "/".join(d for d in directories if d)
        entries.add(f"{prefix}/{name}" if prefix else name)
    return entries


def test_architecture_doc_exists():
    assert ARCHITECTURE.exists(), "docs/ARCHITECTURE.md is a deliverable"


def test_readme_links_architecture_doc():
    assert "docs/ARCHITECTURE.md" in README.read_text(encoding="utf-8")


def test_performance_doc_exists():
    assert PERFORMANCE.exists(), "docs/PERFORMANCE.md is a deliverable"


def test_readme_links_performance_doc():
    assert "docs/PERFORMANCE.md" in README.read_text(encoding="utf-8")


def test_performance_doc_covers_every_backend_and_geometry():
    """The selection guide must name every registered backend and cache
    geometry — a new registration without a guide entry is doc drift."""
    from repro.analysis.cache_sweep import geometry_names
    from repro.engine import backend_names

    text = PERFORMANCE.read_text(encoding="utf-8")
    for name in backend_names():
        assert f"`{name}`" in text, f"{name} missing from docs/PERFORMANCE.md"
    for name in geometry_names():
        assert f"`{name}`" in text, f"{name} missing from docs/PERFORMANCE.md"


def test_lint_doc_exists():
    assert LINT.exists(), "docs/LINT.md is a deliverable"


def test_readme_and_architecture_link_lint_doc():
    assert "docs/LINT.md" in README.read_text(encoding="utf-8")
    assert "LINT.md" in ARCHITECTURE.read_text(encoding="utf-8")


def test_lint_doc_catalogs_every_registered_rule():
    """The rule catalog must name every registered lint rule — a new
    registration without a catalog entry is doc drift."""
    from repro.lint import rule_names

    text = LINT.read_text(encoding="utf-8")
    for name in rule_names():
        assert f"`{name}`" in text, f"{name} missing from docs/LINT.md"


def test_trends_doc_exists():
    assert TRENDS.exists(), "docs/TRENDS.md is a deliverable"


def test_readme_and_architecture_link_trends_doc():
    assert "docs/TRENDS.md" in README.read_text(encoding="utf-8")
    assert "TRENDS.md" in ARCHITECTURE.read_text(encoding="utf-8")


def test_trends_doc_catalogs_every_family():
    """The family catalog must name every known trend family — a new
    collector without a catalog entry is doc drift."""
    from repro.trends import KNOWN_FAMILIES

    text = TRENDS.read_text(encoding="utf-8")
    for name in KNOWN_FAMILIES:
        assert f"`{name}`" in text, f"{name} missing from docs/TRENDS.md"


def test_trends_doc_states_every_threshold():
    """The tolerance table must carry every policy override, with its
    actual percentage — a tuned threshold without a doc update is drift."""
    from repro.trends import DEFAULT_REL_TOL, DEFAULT_RELATIVE_METRICS

    text = TRENDS.read_text(encoding="utf-8")
    for substring, tolerance in DEFAULT_RELATIVE_METRICS:
        assert f"`{substring}`" in text, \
            f"override {substring} missing from docs/TRENDS.md"
        assert f"{tolerance:.0%}" in text, \
            f"tolerance {tolerance:.0%} for {substring} not stated"
    assert f"{DEFAULT_REL_TOL:.0%}" in text


def test_readme_backend_matrix_lists_every_backend():
    """The README backend table must list every registered backend name."""
    from repro.engine import backend_names

    text = README.read_text(encoding="utf-8")
    for name in backend_names():
        assert f"`{name}`" in text, f"{name} missing from README backend matrix"


def test_module_tree_matches_src_exactly():
    """Every file under src/repro is in the doc tree, and vice versa."""
    actual = {
        str(path.relative_to(SRC))
        for path in SRC.rglob("*")
        if path.is_file() and path.suffix in (".py", ".md")
        and "__pycache__" not in path.parts
    }
    documented = _doc_tree_entries()
    missing = actual - documented
    stale = documented - actual
    assert not missing and not stale, (
        f"docs/ARCHITECTURE.md module tree drifted from src/repro/: "
        f"undocumented={sorted(missing)}, stale={sorted(stale)}")


def test_every_package_described_in_layers():
    """Each repro subpackage must be referenced as `repro.<name>` in the doc."""
    text = ARCHITECTURE.read_text(encoding="utf-8")
    packages = {p.name for p in SRC.iterdir()
                if p.is_dir() and (p / "__init__.py").exists()}
    for package in sorted(packages):
        assert f"repro.{package}" in text, f"repro.{package} not described"


@pytest.mark.parametrize("doc", ["docs/ARCHITECTURE.md", "docs/PERFORMANCE.md",
                                 "docs/LINT.md", "docs/TRENDS.md",
                                 "README.md"],
                         ids=["architecture", "performance", "lint", "trends",
                              "readme"])
def test_relative_links_resolve(doc):
    path = REPO / doc
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{doc}: broken link -> {target}"
