"""Golden-metric regression harness for the end-to-end pipeline.

Every registered scenario runs end-to-end through
:class:`repro.workloads.PipelineRunner` — baseline and Bonsai — and the
resulting :meth:`PipelineRunResult.metrics` dictionary is compared against a
JSON snapshot under ``tests/golden/``.  The snapshots lock down *functional*
outcomes (cluster counts, search counters, track labels, localization error)
and the deterministic hardware-model figures, so a performance refactor that
silently changes any stage's behaviour trips these tests.

To regenerate the snapshots after an intentional behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_pipeline.py --update-golden

Integer metrics must match exactly; floats get tight relative tolerances
(slightly looser for the NDT localization error, which amplifies platform
rounding through ten Newton iterations).
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.engine import ExecutionConfig
from repro.scenarios import scenario_names
from repro.workloads import PipelineRunner, PipelineRunnerConfig

from goldens import GOLDEN_BACKENDS, GOLDEN_DIR, golden_path, mode_stem

#: Sensor/sequence preset of the golden runs: small enough for tier-1, dense
#: enough that every scenario produces clusters, tracks and a localization fix.
PRESET = dict(n_frames=3, seed=7, n_beams=14, n_azimuth_steps=120)

#: (relative, absolute) tolerance per metric key; anything not listed uses
#: DEFAULT_REL.  The localization error is the one chaotic float in the set.
FLOAT_TOLERANCES = {
    "mean_error_m": (0.05, 5e-3),
    "max_error_m": (0.05, 5e-3),
}
DEFAULT_REL = 1e-4

SCENARIOS = scenario_names()
#: Execution backends the harness sweeps; snapshot filenames keep the short
#: flavour stems (see ``goldens.mode_stem``).
BACKENDS = GOLDEN_BACKENDS


@lru_cache(maxsize=None)
def _run_metrics(scenario: str, backend: str) -> dict:
    runner = PipelineRunner.from_scenario(
        scenario,
        config=PipelineRunnerConfig(execution=ExecutionConfig(backend=backend)),
        **PRESET,
    )
    # Round-trip through JSON so cached values have exactly the types a
    # loaded snapshot has.
    return json.loads(json.dumps(runner.run().metrics()))


def _golden_path(scenario: str, backend: str) -> Path:
    return golden_path("pipeline", scenario, backend)


def _assert_matches(actual, golden, path: str = "metrics") -> None:
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected a mapping"
        missing = set(golden) - set(actual)
        extra = set(actual) - set(golden)
        assert not missing and not extra, (
            f"{path}: keys changed (missing={sorted(missing)}, extra={sorted(extra)}); "
            f"run --update-golden if intentional")
        for key in golden:
            _assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list) and len(actual) == len(golden), \
            f"{path}: length {len(actual)} != {len(golden)}"
        for index, (a, g) in enumerate(zip(actual, golden)):
            _assert_matches(a, g, f"{path}[{index}]")
    elif isinstance(golden, bool) or isinstance(golden, str) or golden is None:
        assert actual == golden, f"{path}: {actual!r} != {golden!r}"
    elif isinstance(golden, float) or isinstance(actual, float):
        key = path.rsplit(".", 1)[-1]
        rel, abs_tol = FLOAT_TOLERANCES.get(key, (DEFAULT_REL, 1e-12))
        assert actual == pytest.approx(golden, rel=rel, abs=abs_tol), \
            f"{path}: {actual} != {golden} (rel={rel}, abs={abs_tol})"
    else:  # integers: exact
        assert actual == golden, f"{path}: {actual} != {golden}"


@pytest.mark.parametrize("backend", BACKENDS, ids=mode_stem)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_pipeline_matches_golden(scenario, backend, request):
    metrics = _run_metrics(scenario, backend)
    path = _golden_path(scenario, backend)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), (
        f"golden snapshot {path.name} missing; generate it with "
        f"`pytest {__file__} --update-golden`")
    golden = json.loads(path.read_text(encoding="utf-8"))
    _assert_matches(metrics, golden)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_bonsai_matches_baseline_functionally(scenario):
    """The compressed search must not change any pipeline outcome."""
    baseline = _run_metrics(scenario, "baseline-batched")
    bonsai = _run_metrics(scenario, "bonsai-batched")
    for key in ("n_frames", "frame_indices", "raw_points_total",
                "filtered_points_total", "clusters_total",
                "detections_kept_total", "confirmed_tracks_final",
                "tracks_spawned", "track_labels"):
        assert bonsai[key] == baseline[key], key
    assert bonsai["cluster_search"]["points_in_radius"] == \
        baseline["cluster_search"]["points_in_radius"]
    assert bonsai["cluster_search"]["queries"] == \
        baseline["cluster_search"]["queries"]
    if baseline.get("localization"):
        assert bonsai["localization"]["iterations_total"] == \
            baseline["localization"]["iterations_total"]
        assert bonsai["localization"]["mean_error_m"] == pytest.approx(
            baseline["localization"]["mean_error_m"], rel=1e-9, abs=1e-12)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_every_scenario_is_a_real_workload(scenario):
    """Each world must actually exercise the stages it claims to cover."""
    metrics = _run_metrics(scenario, "baseline-batched")
    assert metrics["filtered_points_total"] > 50, "scenario degenerated to noise"
    assert metrics["clusters_total"] > 0, "no clusters — nothing to perceive"
    assert metrics["detections_kept_total"] > 0
    assert metrics["cluster_search"]["queries"] > 0
    assert metrics.get("localization") is not None, "localization stage did not run"
    assert metrics["localization"]["n_scans"] == 2
    # NDT must do better than a wild guess: the error stays well under the
    # scenario's path length and the per-frame ego displacement is bounded.
    assert metrics["localization"]["mean_error_m"] < 2.0


def test_golden_dir_has_no_stale_snapshots():
    """Every snapshot on disk corresponds to a registered scenario/backend."""
    expected = {_golden_path(s, b).name for s in SCENARIOS for b in BACKENDS}
    actual = {p.name for p in GOLDEN_DIR.glob("pipeline_*.json")}
    assert actual == expected, (
        f"stale={sorted(actual - expected)}, missing={sorted(expected - actual)}")
