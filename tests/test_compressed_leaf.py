"""Tests of the cmprsd_strct_array model and whole-tree compression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compressed_leaf import CompressedStructArray, compress_tree
from repro.core.leaf_compression import ZIPPTS_SLICE_BYTES, compress_leaf, decompress_leaf
from repro.kdtree import KDTreeConfig, build_kdtree


class TestCompressedStructArray:
    def test_append_returns_consistent_ref(self, rng):
        array = CompressedStructArray()
        points = rng.normal(10.0, 0.3, size=(8, 3)).astype(np.float32)
        compressed = compress_leaf(points)
        ref = array.append(0, compressed)
        assert ref.offset == 0
        assert ref.length == compressed.size_bytes
        assert ref.n_points == 8
        assert ref.end == compressed.size_bytes

    def test_consecutive_appends_are_contiguous(self, rng):
        array = CompressedStructArray()
        offsets = []
        for leaf_id in range(5):
            points = rng.normal(leaf_id * 5.0 + 1.0, 0.2, size=(6, 3)).astype(np.float32)
            ref = array.append(leaf_id, compress_leaf(points))
            offsets.append((ref.offset, ref.length))
        for (prev_off, prev_len), (off, _) in zip(offsets, offsets[1:]):
            assert off == prev_off + prev_len
        assert array.total_bytes == offsets[-1][0] + offsets[-1][1]

    def test_offsets_slice_aligned(self, rng):
        array = CompressedStructArray()
        for leaf_id in range(4):
            points = rng.normal(3.0, 0.2, size=(leaf_id + 1, 3)).astype(np.float32)
            ref = array.append(leaf_id, compress_leaf(points))
            assert ref.offset % ZIPPTS_SLICE_BYTES == 0

    def test_read_returns_stored_bytes(self, rng):
        array = CompressedStructArray()
        compressed = compress_leaf(rng.normal(7.0, 0.1, size=(5, 3)).astype(np.float32))
        ref = array.append(3, compressed)
        assert array.read(ref) == compressed.data

    def test_duplicate_leaf_rejected(self, rng):
        array = CompressedStructArray()
        compressed = compress_leaf(rng.normal(7.0, 0.1, size=(5, 3)).astype(np.float32))
        array.append(1, compressed)
        with pytest.raises(ValueError):
            array.append(1, compressed)

    def test_len_counts_leaves(self, rng):
        array = CompressedStructArray()
        for leaf_id in range(3):
            array.append(leaf_id, compress_leaf(
                rng.normal(2.0, 0.1, size=(4, 3)).astype(np.float32)))
        assert len(array) == 3


class TestCompressTree:
    def test_every_leaf_gets_a_reference(self, random_tree):
        report = compress_tree(random_tree)
        assert all(leaf.compressed_ref is not None for leaf in random_tree.leaves)
        assert report.n_leaves == random_tree.n_leaves
        assert report.n_points == random_tree.n_points

    def test_array_attached_to_tree(self, random_tree):
        compress_tree(random_tree)
        array = getattr(random_tree, "compressed_array", None)
        assert array is not None
        assert len(array) == random_tree.n_leaves

    def test_decompression_matches_fp16_points(self, random_tree):
        compress_tree(random_tree)
        array = random_tree.compressed_array
        for leaf in random_tree.leaves[:20]:
            decoded = decompress_leaf(array.get(leaf.leaf_id))
            expected = random_tree.leaf_points(leaf).astype(np.float16).astype(np.float64)
            np.testing.assert_array_equal(decoded, expected)

    def test_report_totals_consistent(self, random_tree):
        report = compress_tree(build_kdtree(random_tree.points))
        assert report.baseline_bytes == report.n_points * 16
        assert 0.0 < report.compression_ratio < 1.0
        assert report.savings_fraction == pytest.approx(1.0 - report.compression_ratio)

    def test_realistic_frame_compression_ratio(self, frame_tree):
        """Leaf compression should land near the paper's ~37% of baseline bytes."""
        tree = build_kdtree(frame_tree.points)
        report = compress_tree(tree)
        assert 0.2 < report.compression_ratio < 0.55

    def test_sharing_counts_bounded_by_leaves(self, frame_tree):
        tree = build_kdtree(frame_tree.points)
        report = compress_tree(tree)
        for coord in ("x", "y", "z"):
            assert 0 <= report.coords_shared[coord] <= report.n_leaves
        assert report.leaves_fully_shared <= min(report.coords_shared.values())

    def test_small_leaf_trees_compress(self, random_cloud):
        tree = build_kdtree(random_cloud, KDTreeConfig(max_leaf_size=4))
        report = compress_tree(tree)
        assert report.n_leaves == tree.n_leaves
        assert report.compressed_bytes > 0
