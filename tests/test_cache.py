"""Tests of the set-associative cache and memory-hierarchy simulation."""

from __future__ import annotations

import pytest

from repro.hwmodel import (
    CacheConfig,
    HierarchyRecorder,
    MemoryHierarchy,
    SetAssociativeCache,
)


class TestCacheConfig:
    def test_n_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, associativity=2, line_size=64)
        assert config.n_sets == 256

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=2)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, line_size=64)


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=2))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=2))
        cache.access(0x100)
        assert cache.access(0x13F) is True  # same 64-byte line

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2-way, force 3 lines into the same set.
        config = CacheConfig(size_bytes=2 * 64 * 4, associativity=2, line_size=64)
        cache = SetAssociativeCache(config)
        n_sets = config.n_sets
        a, b, c = 0, n_sets * 64, 2 * n_sets * 64  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)          # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False
        assert cache.stats.evictions >= 1

    def test_lru_updated_on_hit(self):
        config = CacheConfig(size_bytes=2 * 64 * 4, associativity=2, line_size=64)
        cache = SetAssociativeCache(config)
        n_sets = config.n_sets
        a, b, c = 0, n_sets * 64, 2 * n_sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a becomes MRU
        cache.access(c)          # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_miss_ratio(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=2))
        assert cache.stats.miss_ratio == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_ratio == 0.5

    def test_reset(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=2))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False


class TestMemoryHierarchy:
    def test_default_geometry_matches_table_iv(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.l1_config.size_bytes == 32 * 1024
        assert hierarchy.l1_config.associativity == 2
        assert hierarchy.l2_config.size_bytes == 1024 * 1024
        assert hierarchy.l2_config.associativity == 16

    def test_inclusion_of_counts(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0x1000, 16)
        hierarchy.access(0x1000, 16)
        stats = hierarchy.stats
        assert stats.l1_accesses == 2
        assert stats.l1_misses == 1
        assert stats.l2_accesses == 1
        assert stats.l2_misses == 1
        assert stats.memory_accesses == 1

    def test_access_spanning_lines(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(60, 16)  # crosses a 64-byte boundary
        assert hierarchy.stats.l1_accesses == 2

    def test_l2_catches_l1_evictions(self):
        # Working set bigger than L1 but smaller than L2: second pass should
        # hit in L2, not memory.
        hierarchy = MemoryHierarchy()
        footprint = 128 * 1024  # 4x L1, fits L2
        for address in range(0, footprint, 64):
            hierarchy.access(address, 4)
        first_pass_memory = hierarchy.stats.memory_accesses
        for address in range(0, footprint, 64):
            hierarchy.access(address, 4)
        assert hierarchy.stats.memory_accesses == first_pass_memory

    def test_loads_and_stores_counted(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0, 8, is_write=False)
        hierarchy.access(0, 8, is_write=True)
        assert hierarchy.stats.loads == 1
        assert hierarchy.stats.stores == 1
        assert hierarchy.stats.bytes_loaded == 8
        assert hierarchy.stats.bytes_stored == 8

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy().access(0, 0)

    def test_miss_ratio_property(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.stats.l1_miss_ratio == 0.0
        hierarchy.access(0, 4)
        assert hierarchy.stats.l1_miss_ratio == 1.0

    def test_reset(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0, 4)
        hierarchy.reset()
        assert hierarchy.stats.l1_accesses == 0


class TestHierarchyRecorder:
    def test_recorder_protocol(self):
        recorder = HierarchyRecorder()
        recorder.record_load(0x100, 16)
        recorder.record_store(0x200, 4)
        assert recorder.stats.loads == 1
        assert recorder.stats.stores == 1
        assert recorder.stats.l1_accesses == 2
