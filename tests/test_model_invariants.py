"""Property-based invariants of the hardware models and statistics containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bonsai_search import BonsaiStats
from repro.hwmodel import CacheConfig, MemoryHierarchy, SetAssociativeCache, TimingModel
from repro.hwmodel.timing import KernelMetrics
from repro.kdtree import SearchStats

addresses = st.integers(min_value=0, max_value=1 << 22)


class TestCacheInvariants:
    @given(trace=st.lists(addresses, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equal_accesses(self, trace):
        cache = SetAssociativeCache(CacheConfig(size_bytes=4096, associativity=2))
        for address in trace:
            cache.access(address)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses == len(trace)

    @given(trace=st.lists(addresses, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_resident_lines_never_exceed_capacity(self, trace):
        config = CacheConfig(size_bytes=4096, associativity=2)
        cache = SetAssociativeCache(config)
        for address in trace:
            cache.access(address)
        resident = sum(len(s) for s in cache._sets)
        assert resident <= config.n_sets * config.associativity
        assert resident == cache.stats.misses - cache.stats.evictions

    @given(trace=st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_second_pass_over_small_footprint_hits(self, trace):
        """Any trace that fits in the cache entirely hits on replay."""
        config = CacheConfig(size_bytes=1 << 20, associativity=16)
        cache = SetAssociativeCache(config)
        for address in trace:
            cache.access(address)
        before = cache.stats.misses
        for address in trace:
            cache.access(address)
        assert cache.stats.misses == before

    @given(trace=st.lists(st.tuples(addresses, st.integers(min_value=1, max_value=64)),
                          min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hierarchy_level_counts_are_nested(self, trace):
        hierarchy = MemoryHierarchy()
        for address, size in trace:
            hierarchy.access(address, size)
        stats = hierarchy.stats
        assert stats.l1_misses <= stats.l1_accesses
        assert stats.l2_accesses == stats.l1_misses
        assert stats.l2_misses <= stats.l2_accesses
        assert stats.memory_accesses == stats.l2_misses


class TestTimingInvariants:
    metric_values = st.integers(min_value=0, max_value=10_000_000)

    @given(instructions=metric_values, misses=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_cycles_non_negative_and_monotonic_in_instructions(self, instructions, misses):
        model = TimingModel()

        def metrics(n):
            return KernelMetrics(
                instructions=n, loads=n // 4, stores=n // 8,
                l1_accesses=n // 3, l1_misses=misses, l2_accesses=misses,
                l2_misses=misses // 3, memory_accesses=misses // 3,
            )

        base = model.cycles(metrics(instructions))
        more = model.cycles(metrics(instructions + 1000))
        assert base >= 0
        assert more >= base


class TestStatsContainers:
    @given(
        a=st.tuples(*[st.integers(min_value=0, max_value=10_000)] * 5),
        b=st.tuples(*[st.integers(min_value=0, max_value=10_000)] * 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_search_stats_merge_is_additive(self, a, b):
        first = SearchStats(queries=a[0], leaves_visited=a[1], interior_visited=a[2],
                            points_examined=a[3], points_in_radius=a[4])
        second = SearchStats(queries=b[0], leaves_visited=b[1], interior_visited=b[2],
                             points_examined=b[3], points_in_radius=b[4])
        first.merge(second)
        assert first.queries == a[0] + b[0]
        assert first.points_examined == a[3] + b[3]
        assert first.points_in_radius == a[4] + b[4]

    @given(
        classified=st.integers(min_value=1, max_value=100_000),
        inconclusive=st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_bonsai_stats_rate_bounded(self, classified, inconclusive):
        inconclusive = min(inconclusive, classified)
        stats = BonsaiStats(points_classified=classified, inconclusive=inconclusive)
        assert 0.0 <= stats.inconclusive_rate <= 1.0

    def test_bonsai_stats_merge(self):
        a = BonsaiStats(leaf_visits=2, slices_loaded=8, compressed_bytes_loaded=128,
                        points_classified=30, conclusive_in=10, conclusive_out=19,
                        inconclusive=1, recompute_bytes_loaded=16)
        b = BonsaiStats(leaf_visits=1, slices_loaded=4, compressed_bytes_loaded=64,
                        points_classified=15, conclusive_in=5, conclusive_out=10,
                        inconclusive=0, recompute_bytes_loaded=0)
        a.merge(b)
        assert a.leaf_visits == 3
        assert a.points_classified == 45
        assert a.total_point_bytes_loaded == 128 + 64 + 16
