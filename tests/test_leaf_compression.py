"""Tests of the Figure 6 leaf compression / decompression codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.floatfmt import BFLOAT16, FLOAT16
from repro.core.leaf_compression import (
    MAX_POINTS_PER_LEAF,
    ZIPPTS_SLICE_BYTES,
    CompressedLeaf,
    compress_leaf,
    compressed_size_bits,
    decompress_leaf,
)
from repro.core.leaf_compression import decompress_leaf_bits


def _nearby_leaf(rng, n_points=15, center=(20.0, -10.0, 1.0), spread=0.5):
    """Points clustered around a centre (the typical k-d tree leaf)."""
    center = np.asarray(center)
    return (center + rng.normal(0.0, spread, size=(n_points, 3))).astype(np.float32)


class TestCompressLeaf:
    def test_lossless_wrt_fp16(self, rng):
        points = _nearby_leaf(rng)
        compressed = compress_leaf(points)
        decoded = decompress_leaf(compressed)
        expected = points.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(decoded, expected)

    def test_bit_patterns_roundtrip(self, rng):
        points = _nearby_leaf(rng, n_points=9)
        compressed = compress_leaf(points)
        bits = decompress_leaf_bits(compressed)
        expected = points.astype(np.float16).view(np.uint16).astype(np.uint32)
        np.testing.assert_array_equal(bits, expected)

    def test_flags_set_when_sign_exponent_shared(self, rng):
        # x in [16,32) and y in [-16,-8): both share sign+exponent; z spans binades.
        points = np.column_stack([
            rng.uniform(17.0, 31.0, 12),
            rng.uniform(-15.0, -9.0, 12),
            rng.uniform(0.3, 3.0, 12),
        ]).astype(np.float32)
        compressed = compress_leaf(points)
        assert compressed.flags[0] is True
        assert compressed.flags[1] is True
        assert compressed.flags[2] is False

    def test_flags_clear_when_values_span_binades(self):
        points = np.array([[1.0, 1.0, 1.0], [100.0, -1.0, 3.0]], dtype=np.float32)
        compressed = compress_leaf(points)
        assert compressed.flags == (False, False, False)

    def test_single_point_always_fully_shared(self):
        points = np.array([[3.0, -4.0, 0.5]], dtype=np.float32)
        compressed = compress_leaf(points)
        assert compressed.flags == (True, True, True)

    def test_size_is_whole_slices(self, rng):
        compressed = compress_leaf(_nearby_leaf(rng))
        assert compressed.size_bytes % ZIPPTS_SLICE_BYTES == 0
        assert compressed.n_slices == compressed.size_bytes // ZIPPTS_SLICE_BYTES

    def test_payload_bits_match_formula(self, rng):
        points = _nearby_leaf(rng, n_points=11)
        compressed = compress_leaf(points)
        assert compressed.payload_bits == compressed_size_bits(11, compressed.flags)

    def test_fifteen_point_leaf_bounded_by_six_slices(self, rng):
        """Even with no sharing, a full PCL leaf needs at most 6 x 128-bit slices."""
        compressed = compress_leaf(_nearby_leaf(rng, n_points=15))
        assert compressed.n_slices <= 6

    def test_fully_shared_fifteen_point_leaf_fits_four_slices(self):
        """With all three coordinates shared, a 15-point leaf fits 4 slices (59 B)."""
        rng = np.random.default_rng(17)
        points = (np.array([20.0, -10.0, 1.5])
                  + rng.uniform(-0.2, 0.2, size=(15, 3))).astype(np.float32)
        compressed = compress_leaf(points)
        assert compressed.flags == (True, True, True)
        assert compressed.n_slices == 4

    def test_compression_beats_baseline_for_full_leaf(self, rng):
        compressed = compress_leaf(_nearby_leaf(rng, n_points=15))
        assert compressed.compression_ratio(baseline_bytes_per_point=16) < 0.5

    def test_compression_ratio_empty_baseline(self, rng):
        compressed = compress_leaf(_nearby_leaf(rng, n_points=2))
        assert compressed.compression_ratio(baseline_bytes_per_point=16) > 0.0

    def test_empty_leaf_rejected(self):
        with pytest.raises(ValueError):
            compress_leaf(np.empty((0, 3), dtype=np.float32))

    def test_oversized_leaf_rejected(self, rng):
        with pytest.raises(ValueError):
            compress_leaf(_nearby_leaf(rng, n_points=MAX_POINTS_PER_LEAF + 1))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            compress_leaf(np.zeros((4, 2), dtype=np.float32))

    def test_other_format(self, rng):
        points = _nearby_leaf(rng, n_points=6)
        compressed = compress_leaf(points, BFLOAT16)
        decoded = decompress_leaf(compressed, BFLOAT16)
        expected = BFLOAT16.quantize_array(points.astype(np.float64))
        np.testing.assert_array_equal(decoded, expected)

    def test_format_mismatch_on_decompress_rejected(self, rng):
        compressed = compress_leaf(_nearby_leaf(rng, n_points=4))
        with pytest.raises(ValueError):
            decompress_leaf(compressed, BFLOAT16)


class TestCompressedSizeBits:
    def test_all_shared(self):
        # 3 flags + 15*3*10 mantissa + 3*6 shared sign/exp = 471 bits.
        assert compressed_size_bits(15, (True, True, True)) == 471

    def test_none_shared(self):
        # 3 + 450 + 15*3*6 = 723 bits.
        assert compressed_size_bits(15, (False, False, False)) == 723

    def test_sharing_monotonically_reduces_size(self):
        sizes = [
            compressed_size_bits(15, flags)
            for flags in [(False,) * 3, (True, False, False), (True, True, False), (True,) * 3]
        ]
        assert sizes == sorted(sizes, reverse=True)


class TestPropertyRoundTrip:
    @given(
        n_points=st.integers(min_value=1, max_value=16),
        center=st.tuples(
            st.floats(min_value=-100, max_value=100),
            st.floats(min_value=-100, max_value=100),
            st.floats(min_value=-3, max_value=6),
        ),
        spread=st.floats(min_value=0.01, max_value=20.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_always_matches_fp16_quantisation(self, n_points, center, spread, seed):
        rng = np.random.default_rng(seed)
        points = (np.asarray(center)
                  + rng.normal(0.0, spread, size=(n_points, 3))).astype(np.float32)
        compressed = compress_leaf(points)
        decoded = decompress_leaf(compressed)
        expected = points.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(decoded, expected)
        assert compressed.n_points == n_points
        assert compressed.size_bytes % ZIPPTS_SLICE_BYTES == 0
