"""Tests of the cluster tracker (frame-to-frame association)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import ClusterTracker, TrackerConfig
from repro.perception.cluster_filter import DetectedObject
from repro.pointcloud.cloud import BoundingBox


def _detection(cluster_id: int, center, label: str = "vehicle",
               size=(4.0, 2.0, 1.6)) -> DetectedObject:
    center = np.asarray(center, dtype=np.float64)
    half = 0.5 * np.asarray(size, dtype=np.float64)
    return DetectedObject(
        cluster_id=cluster_id,
        centroid=center,
        bbox=BoundingBox(center - half, center + half),
        n_points=50,
        label=label,
    )


class TestTrackLifecycle:
    def test_new_detections_spawn_tentative_tracks(self):
        tracker = ClusterTracker()
        confirmed = tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        assert confirmed == []
        assert len(tracker.tracks) == 1
        assert not tracker.tracks[0].confirmed

    def test_track_confirmed_after_enough_hits(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=2))
        tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        confirmed = tracker.update([_detection(0, (10.1, 0, 0))], timestamp=0.1)
        assert len(confirmed) == 1
        assert confirmed[0].hits == 2

    def test_track_dropped_after_misses(self):
        tracker = ClusterTracker(TrackerConfig(max_misses=2))
        tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        for step in range(1, 4):
            tracker.update([], timestamp=0.1 * step)
        assert tracker.tracks == []

    def test_track_survives_single_miss(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, max_misses=2))
        tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        tracker.update([], timestamp=0.1)
        confirmed = tracker.update([_detection(0, (10.2, 0, 0))], timestamp=0.2)
        assert len(confirmed) == 1
        assert len(tracker.tracks) == 1

    def test_track_ids_are_stable_and_unique(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0)), _detection(1, (20, 0, 0))], timestamp=0.0)
        ids_first = sorted(t.track_id for t in tracker.tracks)
        tracker.update([_detection(0, (0.2, 0, 0)), _detection(1, (20.2, 0, 0))],
                       timestamp=0.1)
        ids_second = sorted(t.track_id for t in tracker.tracks)
        assert ids_first == ids_second
        assert len(set(ids_first)) == 2


class TestAssociation:
    def test_detections_associated_to_nearest_track(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0)), _detection(1, (10, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (0.3, 0, 0)), _detection(1, (10.3, 0, 0))],
                       timestamp=0.1)
        centroids = sorted(t.centroid[0] for t in tracker.tracks)
        assert centroids == pytest.approx([0.3, 10.3])
        assert len(tracker.tracks) == 2

    def test_gating_prevents_wild_association(self):
        tracker = ClusterTracker(TrackerConfig(gating_distance=1.0, confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (30, 0, 0))], timestamp=0.1)
        # The far detection spawns a new track instead of teleporting the old one.
        assert len(tracker.tracks) == 2

    def test_each_detection_used_once(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, gating_distance=5.0))
        tracker.update([_detection(0, (0, 0, 0)), _detection(1, (1.0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (0.5, 0, 0))], timestamp=0.1)
        hit_counts = sorted(t.hits for t in tracker.tracks)
        assert hit_counts == [1, 2]


class TestVelocityEstimation:
    def test_constant_velocity_recovered(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, velocity_smoothing=1.0))
        speed = 5.0
        dt = 0.1
        for step in range(5):
            tracker.update([_detection(0, (speed * dt * step, 0, 0))], timestamp=dt * step)
        track = tracker.tracks[0]
        assert track.velocity[0] == pytest.approx(speed, rel=0.05)
        assert track.speed == pytest.approx(speed, rel=0.05)

    def test_prediction_follows_velocity(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, velocity_smoothing=1.0))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (1.0, 0, 0))], timestamp=1.0)
        track = tracker.tracks[0]
        assert track.predict(1.0)[0] == pytest.approx(2.0, rel=0.05)

    def test_stationary_object_near_zero_velocity(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        for step in range(4):
            tracker.update([_detection(0, (10.0, 5.0, 0.0))], timestamp=0.1 * step)
        assert tracker.tracks[0].speed < 1e-9


class TestBoundaryBehaviour:
    """Threshold semantics at exactly the configured boundary values."""

    def test_detection_at_exact_gating_distance_is_associated(self):
        tracker = ClusterTracker(TrackerConfig(gating_distance=2.0, confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (2.0, 0, 0))], timestamp=0.1)
        assert len(tracker.tracks) == 1
        assert tracker.tracks[0].hits == 2

    def test_detection_just_beyond_gate_spawns_new_track(self):
        tracker = ClusterTracker(TrackerConfig(gating_distance=2.0, confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (2.0 + 1e-6, 0, 0))], timestamp=0.1)
        assert len(tracker.tracks) == 2

    def test_confirmation_exactly_at_threshold(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=3))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (0.1, 0, 0))], timestamp=0.1)
        assert not tracker.tracks[0].confirmed  # 2 hits < 3
        confirmed = tracker.update([_detection(0, (0.2, 0, 0))], timestamp=0.2)
        assert len(confirmed) == 1  # exactly 3 hits

    def test_confirmation_hits_of_one_confirms_at_spawn(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        confirmed = tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        assert len(confirmed) == 1

    def test_track_survives_exactly_max_misses(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, max_misses=2))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([], timestamp=0.1)
        tracker.update([], timestamp=0.2)
        assert len(tracker.tracks) == 1  # misses == max_misses: still alive
        tracker.update([], timestamp=0.3)
        assert tracker.tracks == []  # misses > max_misses: dropped

    def test_same_timestamp_update_is_safe(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, velocity_smoothing=1.0))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=1.0)
        tracker.update([_detection(0, (0.5, 0, 0))], timestamp=1.0)
        track = tracker.tracks[0]
        assert track.hits == 2
        assert track.speed == 0.0  # dt == 0: velocity untouched, no div-by-zero

    def test_out_of_order_timestamp_clamps_dt(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, velocity_smoothing=1.0))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=1.0)
        tracker.update([_detection(0, (0.1, 0, 0))], timestamp=0.5)
        assert np.all(np.isfinite(tracker.tracks[0].velocity))
        assert tracker.tracks[0].speed == 0.0

    def test_tracks_spawned_counts_dropped_tracks(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, max_misses=0))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([], timestamp=0.1)  # dropped immediately
        tracker.update([_detection(0, (50, 0, 0))], timestamp=0.2)
        assert tracker.tracks_spawned == 2
        assert len(tracker.tracks) == 1


class TestOnClusteringOutput:
    def test_tracking_over_synthetic_sequence(self, small_sequence):
        """End-to-end: cluster each frame, track detections across frames."""
        from repro.perception import ClusterConfig, EuclideanClusterExtractor, label_clusters
        from repro.pointcloud import preprocess_for_clustering

        tracker = ClusterTracker(TrackerConfig(gating_distance=3.0, confirmation_hits=2))
        extractor = EuclideanClusterExtractor(ClusterConfig(tolerance=0.6, min_cluster_size=5),
                                              use_bonsai=True)
        confirmed_history = []
        for index in range(len(small_sequence)):
            cloud = preprocess_for_clustering(small_sequence.frame(index))
            result = extractor.extract(cloud)
            detections = label_clusters(cloud, result.clusters)
            confirmed = tracker.update(detections, timestamp=index * 0.1)
            confirmed_history.append(len(confirmed))
        # After the first couple of frames, persistent scene objects are tracked.
        assert confirmed_history[-1] > 0
        assert max(t.age for t in tracker.tracks) >= 2

    def test_tracking_through_pipeline_runner_scenarios(self):
        """Association across frames on a scenario with slow-moving actors."""
        from repro.workloads import PipelineRunner, PipelineRunnerConfig

        config = PipelineRunnerConfig(localization=False)
        result = PipelineRunner.from_scenario(
            "parking_lot", config=config, n_frames=4,
            n_beams=14, n_azimuth_steps=120).run()
        # Persistent parked vehicles must survive association across frames.
        assert result.confirmed_tracks_final > 0
        assert result.tracks_spawned >= result.confirmed_tracks_final
        assert "vehicle" in result.track_labels
        # Track counts per frame are monotone-ish: confirmations need 2 hits,
        # so frame 0 can have none and later frames must have some.
        assert result.frames[0].n_confirmed_tracks == 0
        assert result.frames[-1].n_confirmed_tracks > 0
