"""Tests of the cluster tracker (frame-to-frame association)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import ClusterTracker, TrackerConfig
from repro.perception.cluster_filter import DetectedObject
from repro.pointcloud.cloud import BoundingBox


def _detection(cluster_id: int, center, label: str = "vehicle",
               size=(4.0, 2.0, 1.6)) -> DetectedObject:
    center = np.asarray(center, dtype=np.float64)
    half = 0.5 * np.asarray(size, dtype=np.float64)
    return DetectedObject(
        cluster_id=cluster_id,
        centroid=center,
        bbox=BoundingBox(center - half, center + half),
        n_points=50,
        label=label,
    )


class TestTrackLifecycle:
    def test_new_detections_spawn_tentative_tracks(self):
        tracker = ClusterTracker()
        confirmed = tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        assert confirmed == []
        assert len(tracker.tracks) == 1
        assert not tracker.tracks[0].confirmed

    def test_track_confirmed_after_enough_hits(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=2))
        tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        confirmed = tracker.update([_detection(0, (10.1, 0, 0))], timestamp=0.1)
        assert len(confirmed) == 1
        assert confirmed[0].hits == 2

    def test_track_dropped_after_misses(self):
        tracker = ClusterTracker(TrackerConfig(max_misses=2))
        tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        for step in range(1, 4):
            tracker.update([], timestamp=0.1 * step)
        assert tracker.tracks == []

    def test_track_survives_single_miss(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, max_misses=2))
        tracker.update([_detection(0, (10, 0, 0))], timestamp=0.0)
        tracker.update([], timestamp=0.1)
        confirmed = tracker.update([_detection(0, (10.2, 0, 0))], timestamp=0.2)
        assert len(confirmed) == 1
        assert len(tracker.tracks) == 1

    def test_track_ids_are_stable_and_unique(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0)), _detection(1, (20, 0, 0))], timestamp=0.0)
        ids_first = sorted(t.track_id for t in tracker.tracks)
        tracker.update([_detection(0, (0.2, 0, 0)), _detection(1, (20.2, 0, 0))],
                       timestamp=0.1)
        ids_second = sorted(t.track_id for t in tracker.tracks)
        assert ids_first == ids_second
        assert len(set(ids_first)) == 2


class TestAssociation:
    def test_detections_associated_to_nearest_track(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0)), _detection(1, (10, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (0.3, 0, 0)), _detection(1, (10.3, 0, 0))],
                       timestamp=0.1)
        centroids = sorted(t.centroid[0] for t in tracker.tracks)
        assert centroids == pytest.approx([0.3, 10.3])
        assert len(tracker.tracks) == 2

    def test_gating_prevents_wild_association(self):
        tracker = ClusterTracker(TrackerConfig(gating_distance=1.0, confirmation_hits=1))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (30, 0, 0))], timestamp=0.1)
        # The far detection spawns a new track instead of teleporting the old one.
        assert len(tracker.tracks) == 2

    def test_each_detection_used_once(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, gating_distance=5.0))
        tracker.update([_detection(0, (0, 0, 0)), _detection(1, (1.0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (0.5, 0, 0))], timestamp=0.1)
        hit_counts = sorted(t.hits for t in tracker.tracks)
        assert hit_counts == [1, 2]


class TestVelocityEstimation:
    def test_constant_velocity_recovered(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, velocity_smoothing=1.0))
        speed = 5.0
        dt = 0.1
        for step in range(5):
            tracker.update([_detection(0, (speed * dt * step, 0, 0))], timestamp=dt * step)
        track = tracker.tracks[0]
        assert track.velocity[0] == pytest.approx(speed, rel=0.05)
        assert track.speed == pytest.approx(speed, rel=0.05)

    def test_prediction_follows_velocity(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1, velocity_smoothing=1.0))
        tracker.update([_detection(0, (0, 0, 0))], timestamp=0.0)
        tracker.update([_detection(0, (1.0, 0, 0))], timestamp=1.0)
        track = tracker.tracks[0]
        assert track.predict(1.0)[0] == pytest.approx(2.0, rel=0.05)

    def test_stationary_object_near_zero_velocity(self):
        tracker = ClusterTracker(TrackerConfig(confirmation_hits=1))
        for step in range(4):
            tracker.update([_detection(0, (10.0, 5.0, 0.0))], timestamp=0.1 * step)
        assert tracker.tracks[0].speed < 1e-9


class TestOnClusteringOutput:
    def test_tracking_over_synthetic_sequence(self, small_sequence):
        """End-to-end: cluster each frame, track detections across frames."""
        from repro.perception import ClusterConfig, EuclideanClusterExtractor, label_clusters
        from repro.pointcloud import preprocess_for_clustering

        tracker = ClusterTracker(TrackerConfig(gating_distance=3.0, confirmation_hits=2))
        extractor = EuclideanClusterExtractor(ClusterConfig(tolerance=0.6, min_cluster_size=5),
                                              use_bonsai=True)
        confirmed_history = []
        for index in range(len(small_sequence)):
            cloud = preprocess_for_clustering(small_sequence.frame(index))
            result = extractor.extract(cloud)
            detections = label_clusters(cloud, result.clusters)
            confirmed = tracker.update(detections, timestamp=index * 0.1)
            confirmed_history.append(len(confirmed))
        # After the first couple of frames, persistent scene objects are tracked.
        assert confirmed_history[-1] > 0
        assert max(t.age for t in tracker.tracks) >= 2
