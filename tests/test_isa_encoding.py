"""Tests of the binary encoding / assembler / disassembler of the Bonsai ISA."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    BONSAI_MAJOR_OPCODE,
    CPRZPB,
    LDDCP,
    LDSPZPB,
    SQDWEH,
    SQDWEL,
    STZPB,
    InstructionEncodingError,
    assemble,
    assemble_program,
    decode_instruction,
    decode_program,
    disassemble,
    encode_instruction,
    encode_program,
)

EXAMPLES = [
    LDSPZPB(r_index=1, r_addr=2),
    CPRZPB(r_size=4, r_num_pts=3),
    STZPB(r_addr=5, n_slices=4),
    LDDCP(v_base=8, r_num_pts=6, r_addr=7, n_slices=5),
    SQDWEL(v_sq_diff=2, v_error=3, v_a=1, v_b=9),
    SQDWEH(v_sq_diff=12, v_error=13, v_a=11, v_b=19),
]

registers = st.integers(min_value=0, max_value=31)
slices = st.integers(min_value=0, max_value=63)

instruction_strategy = st.one_of(
    st.builds(LDSPZPB, r_index=registers, r_addr=registers),
    st.builds(CPRZPB, r_size=registers, r_num_pts=registers),
    st.builds(STZPB, r_addr=registers, n_slices=slices),
    st.builds(LDDCP, v_base=registers, r_num_pts=registers, r_addr=registers,
              n_slices=slices),
    st.builds(SQDWEL, v_sq_diff=registers, v_error=registers, v_a=registers,
              v_b=registers),
    st.builds(SQDWEH, v_sq_diff=registers, v_error=registers, v_a=registers,
              v_b=registers),
)


class TestWordEncoding:
    @pytest.mark.parametrize("instruction", EXAMPLES, ids=lambda i: i.mnemonic)
    def test_roundtrip_examples(self, instruction):
        assert decode_instruction(encode_instruction(instruction)) == instruction

    @pytest.mark.parametrize("instruction", EXAMPLES, ids=lambda i: i.mnemonic)
    def test_major_opcode_present(self, instruction):
        word = encode_instruction(instruction)
        assert (word >> 24) & 0xFF == BONSAI_MAJOR_OPCODE
        assert 0 <= word < (1 << 32)

    def test_distinct_instructions_get_distinct_words(self):
        words = {encode_instruction(i) for i in EXAMPLES}
        assert len(words) == len(EXAMPLES)

    def test_register_out_of_range_rejected(self):
        with pytest.raises(InstructionEncodingError):
            encode_instruction(LDSPZPB(r_index=32, r_addr=0))

    def test_slice_count_out_of_range_rejected(self):
        with pytest.raises(InstructionEncodingError):
            encode_instruction(STZPB(r_addr=0, n_slices=64))

    def test_foreign_word_rejected(self):
        with pytest.raises(InstructionEncodingError):
            decode_instruction(0x12345678)

    def test_unknown_minor_opcode_rejected(self):
        word = (BONSAI_MAJOR_OPCODE << 24) | (0x7 << 21)
        with pytest.raises(InstructionEncodingError):
            decode_instruction(word)

    @given(instruction=instruction_strategy)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_property(self, instruction):
        assert decode_instruction(encode_instruction(instruction)) == instruction


class TestProgramEncoding:
    def test_program_roundtrip(self):
        byte_code = encode_program(EXAMPLES)
        assert len(byte_code) == 4 * len(EXAMPLES)
        assert decode_program(byte_code) == EXAMPLES

    def test_empty_program(self):
        assert encode_program([]) == b""
        assert decode_program(b"") == []

    def test_truncated_byte_code_rejected(self):
        with pytest.raises(InstructionEncodingError):
            decode_program(b"\x00\x01\x02")


class TestAssembler:
    @pytest.mark.parametrize("line,expected", [
        ("LDSPZPB x1, [x2]", LDSPZPB(r_index=1, r_addr=2)),
        ("CPRZPB x4, x3", CPRZPB(r_size=4, r_num_pts=3)),
        ("STZPB [x5], #4", STZPB(r_addr=5, n_slices=4)),
        ("LDDCP v8, x6, [x7], #5", LDDCP(v_base=8, r_num_pts=6, r_addr=7, n_slices=5)),
        ("SQDWEL v2, v3, v1, v9", SQDWEL(v_sq_diff=2, v_error=3, v_a=1, v_b=9)),
        ("sqdweh v2, v3, v1, v10", SQDWEH(v_sq_diff=2, v_error=3, v_a=1, v_b=10)),
    ])
    def test_assemble_table2_syntax(self, line, expected):
        assert assemble(line) == expected

    def test_assemble_with_comment(self):
        assert assemble("CPRZPB x4, x3 // compress the buffer") == \
            CPRZPB(r_size=4, r_num_pts=3)

    def test_assemble_unknown_mnemonic(self):
        with pytest.raises(InstructionEncodingError):
            assemble("FOO x1, x2")

    def test_assemble_wrong_operand_count(self):
        with pytest.raises(InstructionEncodingError):
            assemble("CPRZPB x4")

    def test_assemble_empty_line(self):
        with pytest.raises(InstructionEncodingError):
            assemble("   ")

    def test_assemble_program_skips_blank_and_comment_lines(self):
        source = """
        // compress one leaf
        LDSPZPB x1, [x2]
        CPRZPB x4, x3

        STZPB [x5], #4
        """
        program = assemble_program(source)
        assert [i.mnemonic for i in program] == ["LDSPZPB", "CPRZPB", "STZPB"]

    @pytest.mark.parametrize("instruction", EXAMPLES, ids=lambda i: i.mnemonic)
    def test_disassemble_assemble_roundtrip(self, instruction):
        assert assemble(disassemble(instruction)) == instruction

    @given(instruction=instruction_strategy)
    @settings(max_examples=200, deadline=None)
    def test_disassemble_assemble_roundtrip_property(self, instruction):
        assert assemble(disassemble(instruction)) == instruction


class TestAssembledExecution:
    def test_assembled_program_runs_on_machine(self, rng):
        """Byte-code assembled from Table II text drives the functional machine."""
        import numpy as np

        from repro.isa import BonsaiMachine

        machine = BonsaiMachine()
        points = (np.array([12.0, -3.0, 0.5])
                  + rng.normal(0, 0.2, size=(4, 3))).astype(np.float32)
        for i, point in enumerate(points):
            machine.memory.write_point_fp32(0x100 + 16 * i, point)

        source_lines = []
        for i in range(4):
            machine.scalars.write(10 + i, 0x100 + 16 * i)
        for i in range(4):
            machine.scalars.write(20 + i, i)
            source_lines.append(f"LDSPZPB x{20 + i}, [x{10 + i}]")
        machine.scalars.write(3, 4)
        source_lines.append("CPRZPB x4, x3")
        machine.scalars.write(5, 0x4000)
        program = assemble_program("\n".join(source_lines))
        byte_code = encode_program(program)
        machine.run(decode_program(byte_code))
        size = machine.scalars.read(4)
        from repro.core import compress_leaf

        assert size == compress_leaf(points).size_bytes
