"""Tests of the ICP registration baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import ICPConfig, ICPMatcher
from repro.pointcloud import PointCloud


@pytest.fixture(scope="module")
def structured_cloud():
    """A cloud with two perpendicular walls and scattered posts (well constrained)."""
    rng = np.random.default_rng(11)
    xs = rng.uniform(-20, 20, 1500)
    wall_a = np.column_stack([xs, np.full_like(xs, 6.0) + rng.normal(0, 0.03, xs.size),
                              rng.uniform(-1.5, 1.5, xs.size)])
    ys = rng.uniform(-6, 6, 1200)
    wall_b = np.column_stack([np.full_like(ys, 15.0) + rng.normal(0, 0.03, ys.size), ys,
                              rng.uniform(-1.5, 1.5, ys.size)])
    posts = rng.uniform(-15, 15, size=(300, 3))
    posts[:, 1] = rng.uniform(-5, 5, 300)
    posts[:, 2] = rng.uniform(-1.5, 2.0, 300)
    return PointCloud(np.vstack([wall_a, wall_b, posts]).astype(np.float32))


def _yaw_rotation(yaw):
    c, s = np.cos(yaw), np.sin(yaw)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


class TestICPRegistration:
    def test_identity_registration(self, structured_cloud):
        matcher = ICPMatcher(structured_cloud, ICPConfig(max_scan_points=250))
        result = matcher.register(structured_cloud)
        assert np.linalg.norm(result.translation) < 0.05
        assert abs(result.yaw) < 0.01
        assert result.inlier_rmse < 0.1

    def test_recovers_translation(self, structured_cloud):
        matcher = ICPMatcher(structured_cloud, ICPConfig(max_scan_points=250))
        offset = np.array([0.4, -0.25, 0.0])
        scan = structured_cloud.translated(-offset)
        result = matcher.register(scan)
        np.testing.assert_allclose(result.translation[:2], offset[:2], atol=0.1)

    def test_recovers_small_yaw(self, structured_cloud):
        true_yaw = 0.03
        rotation = _yaw_rotation(-true_yaw)
        scan = structured_cloud.transformed(rotation, (0.0, 0.0, 0.0))
        matcher = ICPMatcher(structured_cloud, ICPConfig(max_scan_points=250))
        result = matcher.register(scan)
        assert result.yaw == pytest.approx(true_yaw, abs=0.02)

    def test_converges_flag(self, structured_cloud):
        matcher = ICPMatcher(structured_cloud, ICPConfig(max_scan_points=200,
                                                         max_iterations=30))
        result = matcher.register(structured_cloud.translated([-0.2, 0.1, 0.0]))
        assert result.converged
        assert result.iterations <= 30

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            ICPMatcher(PointCloud())

    def test_correspondence_gating(self, structured_cloud):
        matcher = ICPMatcher(structured_cloud,
                             ICPConfig(max_correspondence_distance=0.01, max_scan_points=100))
        # Scan far away from the map: everything gated out, no correspondences.
        scan = structured_cloud.translated([100.0, 100.0, 0.0])
        result = matcher.register(scan)
        assert result.n_correspondences < 3
        assert not result.converged


class TestICPWithBonsai:
    def test_bonsai_correspondences_give_same_transform(self, structured_cloud):
        config = ICPConfig(max_scan_points=150, max_iterations=15)
        scan = structured_cloud.translated([-0.3, 0.15, 0.0])
        baseline = ICPMatcher(structured_cloud, config, use_bonsai=False).register(scan)
        bonsai = ICPMatcher(structured_cloud, config, use_bonsai=True).register(scan)
        np.testing.assert_allclose(bonsai.translation, baseline.translation, atol=1e-9)
        np.testing.assert_allclose(bonsai.rotation, baseline.rotation, atol=1e-9)
        assert bonsai.iterations == baseline.iterations

    def test_bonsai_knn_avoids_exact_fetches(self, structured_cloud):
        config = ICPConfig(max_scan_points=100, max_iterations=5)
        matcher = ICPMatcher(structured_cloud, config, use_bonsai=True)
        matcher.register(structured_cloud.translated([-0.2, 0.0, 0.0]))
        stats = matcher._bonsai_knn.stats
        assert stats.points_screened > 0
        assert stats.exact_fetches < stats.points_screened
