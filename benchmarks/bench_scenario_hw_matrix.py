"""Hardware scenario matrix: trace-driven cache/timing/energy, every world.

`bench_scenario_matrix` shows the compressed search moves fewer bytes on
every scenario; this benchmark pushes the claim one layer down the stack.  It
runs every registered world through the end-to-end pipeline in
**hardware-in-the-loop mode** (``ExecutionConfig(backend=<name>,
hardware=True)``): the clustering and NDT-localization searches take the
per-query recorder path, so
every tree access streams through the trace-driven cache hierarchy of
:mod:`repro.hwmodel`, and each stage reports miss ratios, bytes moved per
hierarchy level, and first-order cycle/energy estimates.

The regenerated table answers whether the paper's memory-hierarchy claims
(Figures 9/10/12: fewer bytes fetched, bounded L1-miss increase, net energy
win) hold beyond the urban frame set — on dense indoor aisles, sparse rural
fields and degraded sensors.

Scale knobs: ``REPRO_BENCH_HW_FRAMES`` (default 3),
``REPRO_BENCH_HW_BEAMS`` / ``REPRO_BENCH_HW_AZIMUTH`` (default 18 x 180).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import HardwareScenarioSweep, render_hw_matrix

from paper_reference import write_result

N_FRAMES = int(os.environ.get("REPRO_BENCH_HW_FRAMES", "3"))
N_BEAMS = int(os.environ.get("REPRO_BENCH_HW_BEAMS", "18"))
N_AZIMUTH = int(os.environ.get("REPRO_BENCH_HW_AZIMUTH", "180"))


@pytest.fixture(scope="module")
def sweep():
    """Every scenario x {baseline, Bonsai} in hardware-in-the-loop mode."""
    return HardwareScenarioSweep(
        n_frames=N_FRAMES, n_beams=N_BEAMS, n_azimuth_steps=N_AZIMUTH).run()


def test_scenario_hw_matrix_report(benchmark, sweep):
    """Regenerate the hardware scenario matrix (cross-scenario cache claims)."""
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    write_result("scenario_hw_matrix", render_hw_matrix(result))

    for scenario in result.scenarios():
        baseline, bonsai = result.pair(scenario)
        # Functional parity first: hardware mode must not change any
        # pipeline outcome, and neither must the compressed search.
        for key in ("clusters_total", "detections_kept_total",
                    "confirmed_tracks_final", "track_labels", "frame_indices"):
            assert bonsai.metrics[key] == baseline.metrics[key], (scenario, key)
        assert set(baseline.hardware) == {"clustering", "localization"}, scenario

        for stage in baseline.hardware:
            base, bon = baseline.hardware[stage], bonsai.hardware[stage]
            # The central claim, now per stage and per scenario: the
            # compressed search pulls fewer demand bytes through the
            # hierarchy at identical functional results.
            assert bon["bytes_loaded"] < 0.8 * base["bytes_loaded"], (scenario, stage)
            # The trace is live: the stage really exercised the caches.
            assert base["l1_accesses"] > 0 and base["l1_misses"] > 0, (scenario, stage)
            assert 0.0 <= bon["l1_miss_ratio"] <= 1.0, (scenario, stage)
        # Energy follows the bytes: the Bonsai configuration never costs
        # more energy end-to-end across the two search stages.
        base_energy = sum(baseline.hardware[s]["energy_j"] for s in baseline.hardware)
        bonsai_energy = sum(bonsai.hardware[s]["energy_j"] for s in bonsai.hardware)
        assert bonsai_energy < base_energy, scenario


def test_single_scenario_hw_kernel(benchmark):
    """Time one hardware-in-the-loop pipeline run on the densest world."""
    from repro.engine import ExecutionConfig
    from repro.workloads import PipelineRunner, PipelineRunnerConfig

    def run():
        return PipelineRunner.from_scenario(
            "warehouse_indoor",
            config=PipelineRunnerConfig(execution=ExecutionConfig(
                backend="bonsai-batched", hardware=True)),
            n_frames=2, n_beams=N_BEAMS, n_azimuth_steps=N_AZIMUTH,
        ).run()

    benchmark.pedantic(run, rounds=1, iterations=1)
