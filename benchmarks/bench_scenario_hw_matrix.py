"""Hardware scenario matrix: trace-driven cache/timing/energy, every world.

`bench_scenario_matrix` shows the compressed search moves fewer bytes on
every scenario; this benchmark pushes the claim one layer down the stack.  It
runs every registered world through the end-to-end pipeline in
**hardware-in-the-loop mode** (``ExecutionConfig(backend=<name>,
hardware=True)``): the clustering and NDT-localization searches take the
per-query recorder path, so
every tree access streams through the trace-driven cache hierarchy of
:mod:`repro.hwmodel`, and each stage reports miss ratios, bytes moved per
hierarchy level, and first-order cycle/energy estimates.

The regenerated table answers whether the paper's memory-hierarchy claims
(Figures 9/10/12: fewer bytes fetched, bounded L1-miss increase, net energy
win) hold beyond the urban frame set — on dense indoor aisles, sparse rural
fields and degraded sensors.

The matrix runs its cells across a process pool (``HardwareScenarioSweep``'s
``n_jobs``), which is what makes full-resolution sensors affordable; the
pooled sweep's deterministic merge returns exactly the serial result, so the
regenerated table and the golden snapshots are unaffected by the worker
count.  ``test_parallel_sweep_speedup`` measures the wall-clock win of the
pool (>= 2x at 4 workers, asserted when the machine has >= 4 cores).

Scale knobs: ``REPRO_BENCH_HW_FRAMES`` (default 3),
``REPRO_BENCH_HW_BEAMS`` / ``REPRO_BENCH_HW_AZIMUTH`` (default 18 x 180),
``REPRO_BENCH_HW_JOBS`` (default: auto worker count),
``REPRO_BENCH_REQUIRE_SPEEDUP`` (1 = always assert the 2x, 0 = never).
With ``REPRO_TRENDS_DIR`` set, the regenerated matrix is also recorded into
the trend store (family ``scenario-hw``) — the committed baseline under
``benchmarks/trends/`` was produced exactly this way (``docs/TRENDS.md``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import HardwareScenarioSweep, render_hw_matrix
from repro.engine.parallel import resolve_workers
from repro.trends import collect_hw_sweep, maybe_record

from paper_reference import write_result

N_FRAMES = int(os.environ.get("REPRO_BENCH_HW_FRAMES", "3"))
N_BEAMS = int(os.environ.get("REPRO_BENCH_HW_BEAMS", "18"))
N_AZIMUTH = int(os.environ.get("REPRO_BENCH_HW_AZIMUTH", "180"))
N_JOBS = int(os.environ.get("REPRO_BENCH_HW_JOBS", "0")) or resolve_workers()

#: Workers of the speedup measurement (the acceptance point of the parallel
#: sweep) and the scenario subset it times.
SPEEDUP_JOBS = 4
SPEEDUP_SCENARIOS = ("urban", "warehouse_indoor", "sparse_rural", "tunnel")


def _available_cores() -> int:
    """Cores this process may actually run on (affinity/cgroup-aware where
    the platform exposes it — ``os.cpu_count()`` reports the host's)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def sweep():
    """Every scenario x {baseline, Bonsai} in hardware-in-the-loop mode."""
    return HardwareScenarioSweep(
        n_frames=N_FRAMES, n_beams=N_BEAMS, n_azimuth_steps=N_AZIMUTH,
        n_jobs=N_JOBS).run()


def test_scenario_hw_matrix_report(benchmark, sweep):
    """Regenerate the hardware scenario matrix (cross-scenario cache claims)."""
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    write_result("scenario_hw_matrix", render_hw_matrix(result))
    maybe_record(lambda ctx: collect_hw_sweep(
        result, commit=ctx.commit, run_id=ctx.run_id, order=ctx.order))

    for scenario in result.scenarios():
        baseline, bonsai = result.pair(scenario)
        # Functional parity first: hardware mode must not change any
        # pipeline outcome, and neither must the compressed search.
        for key in ("clusters_total", "detections_kept_total",
                    "confirmed_tracks_final", "track_labels", "frame_indices"):
            assert bonsai.metrics[key] == baseline.metrics[key], (scenario, key)
        assert set(baseline.hardware) == {"clustering", "localization"}, scenario

        for stage in baseline.hardware:
            base, bon = baseline.hardware[stage], bonsai.hardware[stage]
            # The central claim, now per stage and per scenario: the
            # compressed search pulls fewer demand bytes through the
            # hierarchy at identical functional results.
            assert bon["bytes_loaded"] < 0.8 * base["bytes_loaded"], (scenario, stage)
            # The trace is live: the stage really exercised the caches.
            assert base["l1_accesses"] > 0 and base["l1_misses"] > 0, (scenario, stage)
            assert 0.0 <= bon["l1_miss_ratio"] <= 1.0, (scenario, stage)
        # Energy follows the bytes: the Bonsai configuration never costs
        # more energy end-to-end across the two search stages.
        base_energy = sum(baseline.hardware[s]["energy_j"] for s in baseline.hardware)
        bonsai_energy = sum(bonsai.hardware[s]["energy_j"] for s in bonsai.hardware)
        assert bonsai_energy < base_energy, scenario


def test_parallel_sweep_speedup(benchmark):
    """The pooled sweep: identical result, >= 2x wall-clock at 4 workers.

    Runs a scenario subset serially and through a 4-worker pool, asserts the
    two results are identical (the deterministic-merge contract), and — on
    machines whose *affinity-visible* core count is at least
    ``SPEEDUP_JOBS`` — asserts the >= 2x speedup; on smaller machines the
    speedup is reported only, since there is no parallel hardware to win
    on.  ``REPRO_BENCH_REQUIRE_SPEEDUP=0`` downgrades the assertion to a
    report on throttled shared runners; ``=1`` forces it regardless of the
    detected core count.
    """
    import json

    def run(n_jobs):
        start = time.perf_counter()
        result = HardwareScenarioSweep(
            list(SPEEDUP_SCENARIOS), n_frames=N_FRAMES, n_beams=N_BEAMS,
            n_azimuth_steps=N_AZIMUTH, n_jobs=n_jobs).run()
        return result, time.perf_counter() - start

    serial_result, serial_seconds = benchmark.pedantic(
        lambda: run(1), rounds=1, iterations=1)
    pooled_result, pooled_seconds = run(SPEEDUP_JOBS)

    assert json.dumps(pooled_result.as_dict(), sort_keys=True) == \
        json.dumps(serial_result.as_dict(), sort_keys=True)
    speedup = serial_seconds / pooled_seconds
    cores = _available_cores()
    print(f"\nparallel hw sweep ({len(SPEEDUP_SCENARIOS)} scenarios x 2 "
          f"backends): serial {serial_seconds:.2f}s, {SPEEDUP_JOBS} workers "
          f"{pooled_seconds:.2f}s ({speedup:.2f}x, {cores} cores available)")
    require = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if require == "0":
        return
    if require == "1" or cores >= SPEEDUP_JOBS:
        assert speedup >= 2.0, (
            f"parallel sweep only {speedup:.2f}x at {SPEEDUP_JOBS} workers "
            f"({cores} cores)")


def test_single_scenario_hw_kernel(benchmark):
    """Time one hardware-in-the-loop pipeline run on the densest world."""
    from repro.engine import ExecutionConfig
    from repro.workloads import PipelineRunner, PipelineRunnerConfig

    def run():
        return PipelineRunner.from_scenario(
            "warehouse_indoor",
            config=PipelineRunnerConfig(execution=ExecutionConfig(
                backend="bonsai-batched", hardware=True)),
            n_frames=2, n_beams=N_BEAMS, n_azimuth_steps=N_AZIMUTH,
        ).run()

    benchmark.pedantic(run, rounds=1, iterations=1)
