"""Paper-reported values and result-file helpers shared by all benchmarks."""

from __future__ import annotations

from pathlib import Path

#: Paper-reported values, used in every rendered report for side-by-side
#: comparison (EXPERIMENTS.md references the same constants).
PAPER = {
    "fig2": {
        "Euclidean Cluster (Segmentation)": 0.61,
        "NDT Matching (Localization)": 0.51,
    },
    "table1": {"ieee_fp16": 0.00076, "bfloat16": 0.0061, "float24": 0.000003},
    "leaf_similarity": {"x": 0.78, "y": 0.83},
    "fig9a": {
        "execution_time": -0.12,
        "instructions": -0.16,
        "loads": -0.23,
        "stores": -0.18,
        "l1_accesses": -0.14,
        "l1_misses": 0.08,
    },
    "fig9b_fraction": 0.37,
    "fig10": {"l1_accesses": -0.14, "l2_accesses": 0.11, "memory_accesses": 0.08},
    "fig11_mean_reduction": 0.0926,
    "fig11_p99_reduction": 0.1219,
    "fig12_mean_reduction": 0.1084,
    "table3": {"latency_mean_error": 0.0294, "ipc_relative_error": 0.0468,
               "l1_miss_ratio_difference": 0.0010},
    "table5_area_increase": 0.0036,
    "table5_power_increase": 0.0129,
    "recompute_rate": 0.0037,
    "visits_per_leaf": 52.0,
    "software_compression_slowdown": 7.0,
}

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> Path:
    """Write a regenerated table/figure to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path
