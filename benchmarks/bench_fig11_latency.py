"""Figure 11 — end-to-end euclidean-cluster latency distribution.

Paper: the Bonsai-extensions reduce the mean end-to-end latency by 9.26% and
the 99th-percentile tail latency by 12.19%.  The benchmark runs the full
pipeline (pre-processing + extract kernel + labeling) over the frame set in
both configurations and regenerates the two box plots.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_boxplot_figure
from repro.workloads import EuclideanClusterPipeline, PipelineConfig

from paper_reference import PAPER, write_result


def test_fig11_report(benchmark, comparison):
    """Regenerate Figure 11 and check the improvement band."""
    text = benchmark.pedantic(
        render_boxplot_figure,
        args=("Figure 11 - End-to-end latency of the euclidean cluster node [s]",
              comparison.latency_baseline,
              comparison.latency_bonsai,
              comparison.latency_improvements),
        kwargs={"paper_mean_reduction": PAPER["fig11_mean_reduction"], "unit": " s"},
        rounds=1, iterations=1,
    )
    text += (
        f"\n  Paper p99 improvement: {PAPER['fig11_p99_reduction']:.2%}"
    )
    write_result("fig11_latency", text)

    mean_reduction = comparison.latency_improvements["mean_reduction"]
    p99_reduction = comparison.latency_improvements["p99_reduction"]
    # Shape: Bonsai wins on both the mean and the tail, by single-digit to
    # low-double-digit percentages (the paper reports 9.26% / 12.19%).
    assert 0.03 < mean_reduction < 0.30
    assert 0.03 < p99_reduction < 0.30


def test_fig11_latency_distributions_not_degenerate(benchmark, comparison):
    """The box plots need spread: frames differ in size and cluster count."""
    benchmark.pedantic(lambda: comparison.latency_baseline.std, rounds=1, iterations=1)
    assert comparison.latency_baseline.std > 0
    assert comparison.latency_bonsai.std > 0
    assert comparison.latency_baseline.n >= 4


def test_fig11_end_to_end_frame(benchmark, pipeline, bench_sequence):
    """Time one full end-to-end frame evaluation (baseline configuration)."""
    cloud = bench_sequence.frame(0)

    def run():
        return pipeline.run_frame(cloud, use_bonsai=False).end_to_end_seconds

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


def test_fig11_batched_engine_matches_functional_counters(benchmark, pipeline,
                                                          bench_sequence):
    """The batched query engine serves the same frame with identical stats.

    With cache simulation disabled the extract kernel runs its cluster growth
    through :mod:`repro.runtime` (one batched radius query per BFS wave).
    The functional search counters that drive the latency model must be
    identical to the per-query trace-driven run.
    """
    cloud = bench_sequence.frame(0)
    batched_pipeline = EuclideanClusterPipeline(PipelineConfig(simulate_caches=False))

    batched = benchmark.pedantic(
        batched_pipeline.run_frame, args=(cloud,), kwargs={"use_bonsai": False},
        rounds=1, iterations=1)
    reference = pipeline.run_frame(cloud, use_bonsai=False)

    assert batched.n_clusters == reference.n_clusters
    for attribute in ("queries", "leaves_visited", "interior_visited",
                      "points_examined", "points_in_radius", "point_bytes_loaded"):
        assert getattr(batched.search_stats, attribute) == \
            getattr(reference.search_stats, attribute)
