"""Table I — radius-search classification error of reduced FP formats.

Paper: misclassification rates of 0.076% (IEEE fp16), 0.61% (bfloat16) and
0.0003% (custom 24-bit float) relative to the 32-bit baseline, with fp16 an
order of magnitude more accurate than bfloat16.  The benchmark re-runs the
euclidean-clustering radius searches with each format (no shell, no
recomputation — the raw error the shell later removes) and regenerates the
table.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table1, table1_classification_errors
from repro.core.floatfmt import FLOAT16
from repro.kdtree import build_kdtree, radius_search

from paper_reference import PAPER, write_result

RADIUS = 0.6


@pytest.fixture(scope="module")
def table1_errors(clustering_input):
    tree = build_kdtree(clustering_input)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 3)]
    return table1_classification_errors(tree, queries, RADIUS)


def test_table1_report(benchmark, table1_errors):
    """Regenerate Table I and check its qualitative ordering and magnitudes."""
    text = benchmark.pedantic(render_table1, args=(table1_errors, PAPER["table1"]),
                              rounds=1, iterations=1)
    write_result("table1_fp_error", text)

    fp16 = table1_errors["ieee_fp16"].error_rate
    bf16 = table1_errors["bfloat16"].error_rate
    fp24 = table1_errors["float24"].error_rate
    # Shape: float24 < fp16 < bfloat16, all below 1%, fp16 well below bfloat16.
    assert fp24 <= fp16 <= bf16
    assert bf16 < 0.02
    assert fp16 < 0.005
    assert fp16 < 0.5 * bf16


def test_table1_fp16_classification_kernel(benchmark, clustering_input):
    """Time the reduced-precision classification pass for one query batch."""
    tree = build_kdtree(clustering_input)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 40)]

    def run():
        return table1_classification_errors(tree, queries, RADIUS, [FLOAT16])

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    assert errors["ieee_fp16"].classifications > 0
