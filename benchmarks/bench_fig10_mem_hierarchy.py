"""Figure 10 — accesses per memory-hierarchy level, baseline vs. Bonsai.

Paper: L1 accesses drop by 14% while L2 accesses grow by 11% and main-memory
accesses by 8% (infrequent accesses to the original points for inconclusive
classifications miss in the higher levels).  The benchmark replays the
trace-driven cache simulation of both configurations and regenerates the
three bars.  The reproduction matches the L1 direction; the L2/DRAM
directions depend on the working-set-to-cache-size regime and are discussed
in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_fig10
from repro.hwmodel import HierarchyRecorder
from repro.kdtree import TreeMemoryLayout, build_kdtree, radius_search

from paper_reference import PAPER, write_result


def test_fig10_report(benchmark, comparison):
    """Regenerate Figure 10 and check the dominant (L1) behaviour."""
    text = benchmark.pedantic(render_fig10, args=(comparison, PAPER["fig10"]),
                              rounds=1, iterations=1)
    write_result("fig10_mem_hierarchy", text)

    changes = {name: cmp.relative_change for name, cmp in comparison.fig10.items()}
    # L1 accesses must drop substantially (the paper's headline effect).
    assert changes["l1_accesses"] < -0.05
    # The paper stresses that L1 traffic dominates the other levels by more
    # than an order of magnitude, so the L2/DRAM growth it reports is cheap.
    l1 = comparison.fig10["l1_accesses"].baseline
    l2 = comparison.fig10["l2_accesses"].baseline
    dram = comparison.fig10["memory_accesses"].baseline
    assert l1 > 10 * l2
    assert l1 > 30 * dram


def test_fig10_cache_simulation_kernel(benchmark, clustering_input):
    """Time the trace-driven cache simulation of one frame's search trace."""
    tree = build_kdtree(clustering_input)
    layout = TreeMemoryLayout(n_points=tree.n_points)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 10)]

    def run():
        recorder = HierarchyRecorder()
        for query in queries:
            radius_search(tree, query, 0.6, recorder=recorder, layout=layout)
        return recorder.stats.l1_accesses

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
