"""Figure 12 — energy consumption of the extract kernel.

Paper: the Bonsai-extensions reduce the energy of the euclidean-cluster
extract kernel by 10.84% on average; the reduction comes from executing fewer
instructions and memory accesses, which pays off the small dynamic-power
increase of the added units (Table V).  The benchmark evaluates the energy
model over both configurations and regenerates the box plot.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_boxplot_figure
from repro.hwmodel import EnergyModel, KernelMetrics

from paper_reference import PAPER, write_result


def test_fig12_report(benchmark, comparison):
    """Regenerate Figure 12 and check the improvement band."""
    text = benchmark.pedantic(
        render_boxplot_figure,
        args=("Figure 12 - Energy consumption of the extract kernel [J]",
              comparison.energy_baseline,
              comparison.energy_bonsai,
              comparison.energy_improvements),
        kwargs={"paper_mean_reduction": PAPER["fig12_mean_reduction"], "unit": " J"},
        rounds=1, iterations=1,
    )
    write_result("fig12_energy", text)

    mean_reduction = comparison.energy_improvements["mean_reduction"]
    # Shape: a clear single-digit-to-low-double-digit energy win.
    assert 0.05 < mean_reduction < 0.35


def test_fig12_energy_dominated_by_core_and_caches(benchmark, baseline_measurements):
    """Sanity on the energy decomposition: no single exotic term dominates."""
    model = EnergyModel()
    benchmark.pedantic(lambda: EnergyModel(), rounds=1, iterations=1)
    m = baseline_measurements[0]
    metrics = KernelMetrics(
        instructions=m.extract.instructions, loads=m.extract.loads, stores=m.extract.stores,
        l1_accesses=m.extract.l1_accesses, l1_misses=m.extract.l1_misses,
        l2_accesses=m.extract.l2_accesses, l2_misses=m.extract.l2_misses,
        memory_accesses=m.extract.memory_accesses,
    )
    breakdown = model.estimate(metrics, m.extract.seconds)
    assert breakdown.core_dynamic_j > 0
    assert breakdown.total_j == pytest.approx(m.extract.energy_j, rel=0.05)


def test_fig12_energy_model_kernel(benchmark, baseline_measurements):
    """Time the energy-model evaluation over the measured frame set."""
    model = EnergyModel()

    def run():
        total = 0.0
        for m in baseline_measurements:
            metrics = KernelMetrics(
                instructions=m.extract.instructions, loads=m.extract.loads,
                stores=m.extract.stores, l1_accesses=m.extract.l1_accesses,
                l1_misses=m.extract.l1_misses, l2_accesses=m.extract.l2_accesses,
                l2_misses=m.extract.l2_misses, memory_accesses=m.extract.memory_accesses,
            )
            total += model.estimate(metrics, m.extract.seconds).total_j
        return total

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
