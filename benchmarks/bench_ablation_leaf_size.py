"""Ablation — leaf size vs. compression ratio and recomputation rate.

The paper adopts PCL's default of 15 points per leaf and sizes the ZipPts
buffer for 16.  This ablation sweeps the leaf size within the buffer's
capacity and reports how the compressed footprint, the sign/exponent sharing
rate and the shell recomputation rate respond — the trade-off behind the
design choice called out in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import compress_tree, leaf_similarity
from repro.engine import get_backend
from repro.kdtree import KDTreeConfig, build_kdtree

from paper_reference import write_result

LEAF_SIZES = (4, 8, 15)
RADIUS = 0.6


@pytest.fixture(scope="module")
def sweep(clustering_input):
    rows = []
    for leaf_size in LEAF_SIZES:
        tree = build_kdtree(clustering_input, KDTreeConfig(max_leaf_size=leaf_size))
        report = compress_tree(tree)
        similarity = leaf_similarity(tree)
        bonsai = get_backend("bonsai-perquery", tree)
        for index in range(0, len(clustering_input), 9):
            bonsai.search(clustering_input[index], RADIUS)
        rows.append({
            "leaf_size": leaf_size,
            "n_leaves": tree.n_leaves,
            "compression_ratio": report.compression_ratio,
            "fully_shared": similarity.fully_shared_rate,
            "recompute_rate": bonsai.bonsai_stats.inconclusive_rate,
        })
    return rows


def test_ablation_leaf_size_report(benchmark, sweep):
    """Regenerate the leaf-size ablation table and check the expected trends."""
    benchmark.pedantic(lambda: len(sweep), rounds=1, iterations=1)
    table_rows = [
        (row["leaf_size"], row["n_leaves"], f"{row['compression_ratio']:.1%}",
         f"{row['fully_shared']:.1%}", f"{row['recompute_rate']:.3%}")
        for row in sweep
    ]
    text = render_table(
        ("Points/leaf", "Leaves", "Compressed/baseline bytes",
         "Leaves fully sharing <s,e>", "Recompute rate"),
        table_rows,
        title="Ablation - leaf size (ZipPts buffer bounds the leaf at 16 points)",
    )
    write_result("ablation_leaf_size", text)

    by_size = {row["leaf_size"]: row for row in sweep}
    # Bigger leaves amortise the shared <sign, exponent> copy and the slice
    # padding over more points, so the compression ratio improves.
    assert by_size[15]["compression_ratio"] < by_size[4]["compression_ratio"]
    # Smaller leaves are spatially tighter, so full sharing is more frequent.
    assert by_size[4]["fully_shared"] >= by_size[15]["fully_shared"]
    # The recomputation rate stays well below 1% across the sweep.
    assert all(row["recompute_rate"] < 0.01 for row in sweep)


def test_ablation_leaf_size_build_kernel(benchmark, clustering_input):
    """Time tree build + compression at the paper's leaf size."""
    def run():
        tree = build_kdtree(clustering_input, KDTreeConfig(max_leaf_size=15))
        return compress_tree(tree).compressed_bytes

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
