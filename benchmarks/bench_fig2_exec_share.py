"""Figure 2 — share of execution time spent in radius search.

Paper: radius search accounts for ~61% of Autoware's euclidean cluster task
and ~51% of NDT matching.  The benchmark profiles both synthetic pipelines
with the shared instruction/timing model and regenerates the two bars.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_fig2
from repro.pointcloud import preprocess_for_clustering, voxel_grid_filter
from repro.workloads import profile_euclidean_cluster, profile_ndt_matching

from paper_reference import PAPER, write_result


@pytest.fixture(scope="module")
def shares(bench_sequence):
    ec_share = profile_euclidean_cluster(bench_sequence.frame(0))
    map_cloud = voxel_grid_filter(preprocess_for_clustering(bench_sequence.frame(0)), 0.4)
    scan = bench_sequence.frame(1)
    ndt_share = profile_ndt_matching(scan, map_cloud)
    return [ec_share, ndt_share]


def test_fig2_report(benchmark, shares):
    """Regenerate Figure 2 and check the qualitative claim (search dominates)."""
    text = benchmark.pedantic(render_fig2, args=(shares, PAPER["fig2"]),
                              rounds=1, iterations=1)
    write_result("fig2_exec_share", text)
    ec_share, ndt_share = shares
    # Shape check: radius search is the (near-)majority of both tasks.
    assert ec_share.radius_search_share > 0.4
    assert ndt_share.radius_search_share > 0.3


def test_fig2_euclidean_cluster_profiling(benchmark, bench_sequence):
    """Time the profiling pass itself (one frame through the profiler)."""
    cloud = bench_sequence.frame(0)
    share = benchmark.pedantic(profile_euclidean_cluster, args=(cloud,),
                               rounds=1, iterations=1)
    assert share.total_cycles > 0
