"""Ablation — reduced floating-point format vs. footprint and recompute rate.

Table I motivates choosing IEEE fp16 over bfloat16 and a custom 24-bit float.
This ablation runs the full compressed search with each candidate format and
reports the compressed footprint and the shell recomputation rate, showing
the trade-off the paper describes: bfloat16 stores the same number of bytes
but recomputes an order of magnitude more often, while float24 barely reduces
recomputation yet stores 50% more bits.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import compress_tree
from repro.engine import get_backend
from repro.core.floatfmt import BFLOAT16, FLOAT16, FLOAT24
from repro.kdtree import build_kdtree

from paper_reference import write_result

RADIUS = 0.6
FORMATS = (FLOAT16, BFLOAT16, FLOAT24)


@pytest.fixture(scope="module")
def sweep(clustering_input):
    rows = []
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 9)]
    for fmt in FORMATS:
        tree = build_kdtree(clustering_input)
        bonsai = get_backend("bonsai-perquery", tree, fmt=fmt)
        for query in queries:
            bonsai.search(query, RADIUS)
        rows.append({
            "format": fmt.name,
            "bits": fmt.total_bits,
            "compressed_bytes": bonsai.report.compressed_bytes,
            "compression_ratio": bonsai.report.compression_ratio,
            "recompute_rate": bonsai.bonsai_stats.inconclusive_rate,
        })
    return rows


def test_ablation_formats_report(benchmark, sweep):
    """Regenerate the format ablation and check the paper's selection logic."""
    benchmark.pedantic(lambda: len(sweep), rounds=1, iterations=1)
    table_rows = [
        (row["format"], row["bits"], f"{row['compressed_bytes'] / 1e3:.1f} kB",
         f"{row['compression_ratio']:.1%}", f"{row['recompute_rate']:.3%}")
        for row in sweep
    ]
    text = render_table(
        ("Format", "Bits", "Compressed size", "Compressed/baseline", "Recompute rate"),
        table_rows,
        title="Ablation - reduced FP format used for the compressed leaves",
    )
    write_result("ablation_formats", text)

    by_name = {row["format"]: row for row in sweep}
    # bfloat16 has the same footprint as fp16 but recomputes much more often.
    assert by_name["bfloat16"]["recompute_rate"] > 2 * by_name["ieee_fp16"]["recompute_rate"]
    # float24 recomputes less but costs extra bytes; fp16 recomputation is
    # already rare enough (<1%) that the extra bits do not pay off.
    assert by_name["float24"]["compressed_bytes"] > by_name["ieee_fp16"]["compressed_bytes"]
    assert by_name["ieee_fp16"]["recompute_rate"] < 0.01


def test_ablation_formats_results_identical(benchmark, clustering_input):
    """Whatever the format, the shell guarantees baseline-identical results."""
    from repro.kdtree import radius_search

    tree = benchmark.pedantic(build_kdtree, args=(clustering_input,),
                              rounds=1, iterations=1)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 120)]
    expected = [sorted(radius_search(tree, q, RADIUS)) for q in queries]
    for fmt in FORMATS:
        fresh_tree = build_kdtree(clustering_input)
        bonsai = get_backend("bonsai-perquery", fresh_tree, fmt=fmt)
        got = [sorted(bonsai.search(q, RADIUS)) for q in queries]
        assert got == expected


def test_ablation_formats_compression_kernel(benchmark, clustering_input):
    """Time whole-tree compression in bfloat16 (the scalar codec path)."""
    def run():
        tree = build_kdtree(clustering_input)
        return compress_tree(tree, BFLOAT16).compressed_bytes

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
