"""Cache-geometry sensitivity: map where the Bonsai byte win stops paying.

Extension benchmark (no single paper figure): the paper evaluates one
machine (Table IV).  This benchmark re-runs the hardware-in-the-loop matrix
over the named L1-size variants of that machine
(:mod:`repro.analysis.cache_sweep`) on a representative scenario subset and
regenerates ``benchmarks/results/cache_sensitivity.txt`` — one row per
geometry with both modes' line-fill traffic and energy totals.

How to read it (details in ``docs/PERFORMANCE.md``): demand bytes are
geometry-independent (Bonsai always *requests* ~45% fewer bytes), but the
L2->L1 line-fill reduction shrinks as L1 grows — a large enough L1 absorbs
the baseline's extra traffic too, and the energy win compresses toward the
pure demand-byte delta.  The sweep runs all (geometry, scenario, backend)
cells across one process pool.

Scale knobs: ``REPRO_BENCH_CACHE_FRAMES`` (default 2),
``REPRO_BENCH_CACHE_BEAMS`` / ``REPRO_BENCH_CACHE_AZIMUTH`` (default
18 x 180), ``REPRO_BENCH_CACHE_JOBS`` (default: auto worker count).
With ``REPRO_TRENDS_DIR`` set, the regenerated table is also recorded into
the trend store (family ``cache-sensitivity``, one record per geometry x
mode) — see ``docs/TRENDS.md``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import CacheGeometrySweep, render_cache_sensitivity
from repro.analysis.cache_sweep import DEFAULT_GEOMETRY_NAMES
from repro.engine.parallel import resolve_workers
from repro.trends import collect_cache_sweep, maybe_record

from paper_reference import write_result

N_FRAMES = int(os.environ.get("REPRO_BENCH_CACHE_FRAMES", "2"))
N_BEAMS = int(os.environ.get("REPRO_BENCH_CACHE_BEAMS", "18"))
N_AZIMUTH = int(os.environ.get("REPRO_BENCH_CACHE_AZIMUTH", "180"))
N_JOBS = int(os.environ.get("REPRO_BENCH_CACHE_JOBS", "0")) or resolve_workers()

#: Representative scenario subset: the reference world, the densest and the
#: sparsest distribution — the sensitivity trend must hold on all three.
SCENARIOS = ("urban", "warehouse_indoor", "sparse_rural")


@pytest.fixture(scope="module")
def sweep():
    """The L1-size cut x scenario subset x {baseline, Bonsai}."""
    return CacheGeometrySweep(
        DEFAULT_GEOMETRY_NAMES, list(SCENARIOS), n_frames=N_FRAMES,
        n_beams=N_BEAMS, n_azimuth_steps=N_AZIMUTH, n_jobs=N_JOBS).run()


def test_cache_sensitivity_report(benchmark, sweep):
    """Regenerate the sensitivity table and check its structural claims."""
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    write_result("cache_sensitivity", render_cache_sensitivity(result))
    maybe_record(lambda ctx: collect_cache_sweep(
        result, commit=ctx.commit, run_id=ctx.run_id, order=ctx.order))

    rows = result.comparison_rows()
    by_name = {row["geometry"].name: row for row in rows}

    # Demand bytes are geometry-independent: every row requests the same.
    demands = {(row["base"]["bytes_loaded"], row["other"]["bytes_loaded"])
               for row in rows}
    assert len(demands) == 1
    base_demand, bonsai_demand = demands.pop()
    assert bonsai_demand < 0.8 * base_demand

    for row in rows:
        # The compressed search never moves more L2->L1 fill traffic, and
        # the energy estimate follows, on every geometry.
        assert row["other"]["l2_to_l1_bytes"] < row["base"]["l2_to_l1_bytes"]
        assert row["other"]["energy_j"] < row["base"]["energy_j"]

    # The sensitivity trend along the L1-size cut: the baseline's fill
    # traffic falls monotonically as L1 grows, so the *absolute* L2->L1
    # savings of Bonsai shrink — the byte win pays off less and less.
    cut = ["l1-8k", "l1-16k", "table-iv", "l1-64k", "l1-128k"]
    base_fills = [by_name[name]["base"]["l2_to_l1_bytes"] for name in cut]
    assert base_fills == sorted(base_fills, reverse=True)
    savings = [by_name[name]["base"]["l2_to_l1_bytes"]
               - by_name[name]["other"]["l2_to_l1_bytes"] for name in cut]
    assert savings[0] > savings[-1]
