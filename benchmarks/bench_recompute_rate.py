"""Section V-B statistics — recomputation rate and leaf revisit count.

Paper: only 0.37% of classifications fall inside the error shell and need the
32-bit recomputation, and each created leaf is visited on average ~52 times
during the radius searches of one frame — which is why compressing leaves
once at build time pays off.  The benchmark measures both statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table

from paper_reference import PAPER, write_result


def test_recompute_rate_report(benchmark, comparison, bonsai_measurements):
    """Regenerate the two scalar statistics of Section V-B."""
    visits = benchmark.pedantic(
        lambda: [m.search_stats.mean_visits_per_leaf for m in bonsai_measurements],
        rounds=1, iterations=1,
    )
    rows = [
        ("Classifications recomputed in 32-bit", f"{comparison.inconclusive_rate:.3%}",
         f"{PAPER['recompute_rate']:.2%}"),
        ("Mean radius-search visits per leaf", f"{np.mean(visits):.1f}",
         f"{PAPER['visits_per_leaf']:.0f}"),
    ]
    text = render_table(("Statistic", "Measured", "Paper"), rows,
                        title="Section V-B - Shell recomputation rate and leaf reuse")
    write_result("recompute_rate", text)

    # Shape: recomputation is rare (well under 1%) and leaves are revisited
    # many times, amortising the build-time compression.
    assert comparison.inconclusive_rate < 0.01
    assert np.mean(visits) > 10.0


def test_recompute_rate_never_affects_results(benchmark, bonsai_measurements,
                                               baseline_measurements):
    """Cluster counts are identical, confirming baseline-equivalent accuracy."""
    benchmark.pedantic(lambda: len(bonsai_measurements), rounds=1, iterations=1)
    for base, bonsai in zip(baseline_measurements, bonsai_measurements):
        assert base.n_clusters == bonsai.n_clusters


def test_recompute_rate_counter_kernel(benchmark, clustering_input):
    """Time the Bonsai classification counters over one query batch."""
    from repro.engine import get_backend
    from repro.kdtree import build_kdtree

    tree = build_kdtree(clustering_input)
    bonsai = get_backend("bonsai-perquery", tree)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 15)]

    def run():
        for query in queries:
            bonsai.search(query, 0.6)
        return bonsai.bonsai_stats.inconclusive_rate

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 <= rate < 0.02
