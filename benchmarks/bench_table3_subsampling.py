"""Table III — error introduced by systematic frame sub-sampling.

Paper: processing 20 systematically chosen 300 ms windows instead of the full
eight-minute sequence changes the mean latency by 2.94%, IPC by 4.68% and the
L1-D miss ratio by 0.10 percentage points.  The benchmark applies the same
methodology to the synthetic sequence: it measures the whole sequence, then a
systematic sub-sample, and reports the differences.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.workloads import evaluate_subsampling

from paper_reference import PAPER, write_result


@pytest.fixture(scope="module")
def subsampling_errors(bench_sequence, pipeline):
    return evaluate_subsampling(bench_sequence, n_samples=3, sample_length=1,
                                pipeline=pipeline)


def test_table3_report(benchmark, subsampling_errors):
    """Regenerate Table III and check that sub-sampling is a faithful proxy."""
    benchmark.pedantic(subsampling_errors.as_rows, rounds=1, iterations=1)
    paper = PAPER["table3"]
    rows = [
        ("Mean latency error", f"{subsampling_errors.latency_mean_error:.2%}",
         f"{paper['latency_mean_error']:.2%}"),
        ("IPC relative error", f"{subsampling_errors.ipc_relative_error:.2%}",
         f"{paper['ipc_relative_error']:.2%}"),
        ("L1-D miss ratio difference", f"{subsampling_errors.l1_miss_ratio_difference:.4f}",
         f"{paper['l1_miss_ratio_difference']:.4f}"),
        ("L2 miss ratio difference", f"{subsampling_errors.l2_miss_ratio_difference:.4f}",
         "(paper reports branch mispred. diff. 0.03%)"),
    ]
    text = render_table(
        ("Metric", "Measured", "Paper"),
        rows,
        title=(f"Table III - Sub-sampling error "
               f"({subsampling_errors.n_sampled_frames} of "
               f"{subsampling_errors.n_full_frames} frames)"),
    )
    write_result("table3_subsampling", text)

    # Shape: the sub-sample tracks the full sequence within a few percent.
    assert subsampling_errors.latency_mean_error < 0.15
    assert subsampling_errors.ipc_relative_error < 0.15
    assert subsampling_errors.l1_miss_ratio_difference < 0.02


def test_table3_subsampling_kernel(benchmark, bench_sequence, pipeline):
    """Time the measurement of one sub-sampled frame."""
    cloud = bench_sequence.frame(0)

    def run():
        return pipeline.run_frame(cloud, use_bonsai=False).extract.ipc

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
