"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The heavy
work (running the euclidean-cluster pipeline over the frame set with the
baseline and the Bonsai search) is done once per session and shared; each
bench then times a representative kernel with pytest-benchmark and writes the
regenerated table/figure, next to the paper's reported values, into
``benchmarks/results/``.

With ``REPRO_TRENDS_DIR`` set, the matrix benchmarks additionally merge the
same numbers as :class:`repro.trends.TrendRecord` rows into the named trend
store, keyed by ``REPRO_TRENDS_COMMIT`` / ``REPRO_TRENDS_RUN_ID`` /
``REPRO_TRENDS_ORDER`` — the machine-readable counterpart of the rendered
text tables (workflow and schema: ``docs/TRENDS.md``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis import compare_measurements
from repro.pointcloud import DrivingSequence, LidarConfig, SceneConfig, SequenceConfig
from repro.workloads import EuclideanClusterPipeline

#: Number of synthetic frames the sequence-level benchmarks process.  Small
#: enough for a pure-Python pipeline, large enough for stable statistics.
N_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "6"))


@pytest.fixture(scope="session")
def bench_sequence() -> DrivingSequence:
    """The synthetic driving sequence used across benchmarks."""
    config = SequenceConfig(
        n_frames=N_FRAMES,
        scene=SceneConfig(seed=7),
        lidar=LidarConfig(n_beams=32, n_azimuth_steps=360, seed=707),
    )
    return DrivingSequence(config)


@pytest.fixture(scope="session")
def bench_clouds(bench_sequence):
    """Raw LiDAR frames of the benchmark sequence."""
    return [bench_sequence.frame(i) for i in range(len(bench_sequence))]


@pytest.fixture(scope="session")
def pipeline() -> EuclideanClusterPipeline:
    return EuclideanClusterPipeline()


@pytest.fixture(scope="session")
def baseline_measurements(pipeline, bench_clouds):
    """Per-frame measurements of the baseline configuration."""
    return pipeline.run_frames(bench_clouds, use_bonsai=False)


@pytest.fixture(scope="session")
def bonsai_measurements(pipeline, bench_clouds):
    """Per-frame measurements of the Bonsai configuration."""
    return pipeline.run_frames(bench_clouds, use_bonsai=True)


@pytest.fixture(scope="session")
def comparison(baseline_measurements, bonsai_measurements):
    """Aggregated baseline-vs-Bonsai summary (Figures 9-12)."""
    return compare_measurements(baseline_measurements, bonsai_measurements)


@pytest.fixture(scope="session")
def clustering_input(bench_sequence):
    """The pre-processed first frame (the unit of most micro-benchmarks)."""
    from repro.pointcloud import preprocess_for_clustering

    return preprocess_for_clustering(bench_sequence.frame(0))
