"""Section IV-A — cost of software-only (de)compression.

Paper: iteratively inspecting and re-ordering bits in software slows radius
search down by roughly 7x, which is what motivates hardware support (the
Bonsai-extensions perform the same re-ordering in a handful of cycles).  The
benchmark compares, per leaf visit, the cost of the software bit-reordering
decompression against the baseline leaf inspection it replaces, using wall
clock time of the pure-Python implementations as the proxy.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import compress_tree
from repro.core.leaf_compression import decompress_leaf
from repro.kdtree import build_kdtree

from paper_reference import PAPER, write_result


@pytest.fixture(scope="module")
def compressed_frame_tree(clustering_input):
    tree = build_kdtree(clustering_input)
    compress_tree(tree)
    return tree


def _time_per_leaf(func, leaves, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for leaf in leaves:
            func(leaf)
        best = min(best, time.perf_counter() - start)
    return best / len(leaves)


def test_software_compression_report(benchmark, compressed_frame_tree):
    """Regenerate the ~7x software-only slowdown argument of Section IV-A."""
    benchmark.pedantic(lambda: compressed_frame_tree.n_leaves, rounds=1, iterations=1)
    tree = compressed_frame_tree
    array = tree.compressed_array
    leaves = tree.leaves
    query = tree.points[0].astype(np.float64)

    def baseline_inspect(leaf):
        points = tree.points[leaf.indices].astype(np.float64)
        diffs = points - query
        return (np.einsum("ij,ij->i", diffs, diffs) <= 0.36).sum()

    def software_decompress_inspect(leaf):
        reduced = decompress_leaf(array.get(leaf.leaf_id))
        diffs = reduced - query
        return (np.einsum("ij,ij->i", diffs, diffs) <= 0.36).sum()

    baseline_cost = _time_per_leaf(baseline_inspect, leaves)
    software_cost = _time_per_leaf(software_decompress_inspect, leaves)
    slowdown = software_cost / baseline_cost

    rows = [
        ("Baseline leaf inspection", f"{baseline_cost * 1e6:.1f} us/leaf", ""),
        ("Software bit-reordering decompression + inspection",
         f"{software_cost * 1e6:.1f} us/leaf", ""),
        ("Slowdown", f"{slowdown:.1f}x",
         f"~{PAPER['software_compression_slowdown']:.0f}x (paper)"),
    ]
    text = render_table(("Path", "Cost", "Paper"), rows,
                        title="Section IV-A - Software-only (de)compression overhead")
    write_result("software_compression", text)

    # Shape: software decompression is several times slower than simply
    # reading the uncompressed points, which is why the paper adds hardware.
    assert slowdown > 2.0


def test_software_decompression_kernel(benchmark, compressed_frame_tree):
    """Time one software decompression of a full leaf."""
    tree = compressed_frame_tree
    array = tree.compressed_array
    leaf = max(tree.leaves, key=lambda l: l.n_points)

    result = benchmark(lambda: decompress_leaf(array.get(leaf.leaf_id)))
    assert result.shape[0] == leaf.n_points
