"""Serving-load benchmark: N clients, one resident shared-memory index.

Extension benchmark (no single paper figure): the serve layer's end-to-end
contract.  One process builds a :class:`~repro.serve.store.SharedCloudStore`
— the k-d tree built and Bonsai-compressed **exactly once**, asserted via
:func:`~repro.core.compressed_leaf.compression_pass_count` — and
``REPRO_BENCH_SERVE_CLIENTS`` client processes attach to it by name,
reconstruct a zero-copy :class:`~repro.engine.index.PointCloudIndex` and
fire identical seeded mixed radius/kNN request streams.  The run aggregates
fleet throughput and per-traffic-class p50/p95/p99 latency into
``benchmarks/results/serving_load.txt`` (reading guide in
``docs/PERFORMANCE.md``).

Structural assertions: the parent compresses once, every client compresses
zero times, every client's results checksum is identical (same shared bytes
=> same answers), and no shared-memory segment outlives the run.

Scale knobs: ``REPRO_BENCH_SERVE_CLIENTS`` (default 4),
``REPRO_BENCH_SERVE_POINTS`` (default 15,000),
``REPRO_BENCH_SERVE_REQUESTS`` (default 24 per client),
``REPRO_BENCH_SERVE_QUERIES`` (default 96 per request).
With ``REPRO_TRENDS_DIR`` set, the run is also recorded into the trend
store (family ``serving-load``: one fleet record plus per-traffic-class
latency percentiles).  Latencies are wall-clock, so the regression policy
applies its wide tolerance band to them, and CI does not record this family
into the committed baseline (``docs/TRENDS.md``).
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.serve import render_serving_load, run_serving_load
from repro.serve.loadgen import CLIENT_BACKENDS
from repro.trends import collect_serving_load, maybe_record

from paper_reference import write_result

N_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
N_POINTS = int(os.environ.get("REPRO_BENCH_SERVE_POINTS", "15000"))
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "24"))
N_QUERIES = int(os.environ.get("REPRO_BENCH_SERVE_QUERIES", "96"))
RADIUS = 0.6
K = 5


@pytest.fixture(scope="module")
def load_result():
    """One serving-load run shared by the module's assertions."""
    return run_serving_load(n_clients=N_CLIENTS, n_points=N_POINTS,
                            n_requests=N_REQUESTS, n_queries=N_QUERIES,
                            radius=RADIUS, k=K)


def test_serving_load_report(benchmark, load_result):
    """Regenerate the serving-load table and check its structural claims."""
    result = benchmark.pedantic(lambda: load_result, rounds=1, iterations=1)
    write_result("serving_load", render_serving_load(result))
    maybe_record(lambda ctx: collect_serving_load(
        result, commit=ctx.commit, run_id=ctx.run_id, order=ctx.order))

    # The tentpole acceptance: >= 4 concurrent clients served by one
    # resident store, the tree compressed exactly once fleet-wide.
    assert result.n_clients == N_CLIENTS
    assert result.parent_compression_passes == 1
    assert result.client_compression_passes == [0] * N_CLIENTS
    assert result.checksums_agree

    # Both traffic classes of both flavours were actually exercised.
    assert set(result.latencies) == {
        f"{kind}:{backend}"
        for kind, backend in zip(("radius", "knn"), CLIENT_BACKENDS)
    }
    assert result.total_requests == N_CLIENTS * N_REQUESTS
    assert result.throughput_rps > 0

    for key in result.latencies:
        p50, p95, p99 = result.percentiles(key)
        assert 0 < p50 <= p95 <= p99


def test_serving_load_leaves_no_segments(load_result):
    """Every shared-memory segment is unlinked once the run is over."""
    assert glob.glob("/dev/shm/repro-store-*") == []
