"""Figure 9a — extract-kernel hardware metrics, baseline vs. Bonsai.

Paper: the Bonsai-extensions reduce execution time by 12%, committed
instructions by 16%, loads by 23%, stores by 18% and L1 D-cache accesses by
14%, while L1 misses increase by 8%.  The benchmark runs the extract kernel
of euclidean clustering over the frame set in both configurations and
regenerates the relative-change bars.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_fig9a
from repro.engine import get_backend
from repro.kdtree import RadiusSearcher, build_kdtree

from paper_reference import PAPER, write_result


def test_fig9a_report(benchmark, comparison):
    """Regenerate Figure 9a and check the first-order directions and factors."""
    text = benchmark.pedantic(render_fig9a, args=(comparison, PAPER["fig9a"]),
                              rounds=1, iterations=1)
    write_result("fig9a_hw_metrics", text)

    changes = {name: cmp.relative_change for name, cmp in comparison.fig9a.items()}
    # Directions: everything the paper reports as reduced must be reduced.
    assert changes["execution_time"] < -0.05
    assert changes["instructions"] < -0.05
    assert changes["loads"] < -0.10
    assert changes["stores"] < -0.05
    assert changes["l1_accesses"] < -0.05
    # Factors: reductions stay within a small multiple of the paper's numbers
    # (the functional model has less fixed overhead than compiled PCL/ROS).
    assert changes["loads"] > -0.65
    assert changes["instructions"] > -0.45
    assert changes["execution_time"] > -0.45


def test_fig9a_baseline_search_kernel(benchmark, clustering_input):
    """Time the baseline radius-search kernel (one frame's worth of queries)."""
    tree = build_kdtree(clustering_input)
    searcher = RadiusSearcher(tree)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 8)]

    def run():
        for query in queries:
            searcher.search(query, 0.6)
        return searcher.stats.queries

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


def test_fig9a_bonsai_search_kernel(benchmark, clustering_input):
    """Time the Bonsai radius-search kernel on the same queries."""
    tree = build_kdtree(clustering_input)
    bonsai = get_backend("bonsai-perquery", tree)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 8)]

    def run():
        for query in queries:
            bonsai.search(query, 0.6)
        return bonsai.stats.queries

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
