"""Map-scale cache sensitivity: the L2 cut at a million points.

Extension benchmark (no single paper figure): the frame-scale sensitivity
sweep (``bench_cache_sensitivity.py``) leaves the ``l2-*`` rows flat — a
LiDAR frame's tree fits in every swept L2, so the axis never bites.  This
benchmark rebuilds the experiment at map scale: a 1M+-point map cloud
sampled from a map-scale scenario, indexed by the tiled
:class:`~repro.engine.sharded.ShardedPointCloudIndex`, probed with one
scan's worth of concentrated relocalization-style radius queries in
recorded mode per (geometry, flavour) cell
(:class:`~repro.analysis.map_scale.MapScaleSweep`), regenerating
``benchmarks/results/map_scale_sensitivity.txt``.

How to read it (details in ``docs/PERFORMANCE.md``): the baseline's
DRAM->L2 traffic now *falls* as L2 grows — at map scale the touched tiles'
uncompressed working set overflows a 256 KB L2 and capacity misses appear —
while the compressed search's working set still fits everywhere, so the
Bonsai byte win is largest exactly where L2 capacity is scarce.  Once the
working set fits (>= 1 MB here), extra L2 is idle capacity and the win
saturates at the demand-byte delta.

Scale knobs: ``REPRO_BENCH_MAP_POINTS`` (default 1,000,000),
``REPRO_BENCH_MAP_SCENARIO`` (default ``city_block``),
``REPRO_BENCH_MAP_TILE`` (default 32 m), ``REPRO_BENCH_MAP_QUERIES``
(default 256).
With ``REPRO_TRENDS_DIR`` set, the regenerated table is also recorded into
the trend store (family ``map-scale``, one record per geometry x flavour) —
the committed baseline under ``benchmarks/trends/`` was produced exactly
this way (``docs/TRENDS.md``).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import MapScaleSweep, render_map_scale_sensitivity
from repro.analysis.map_scale import MAP_SCALE_GEOMETRY_NAMES
from repro.trends import collect_map_scale, maybe_record

from paper_reference import write_result

N_POINTS = int(os.environ.get("REPRO_BENCH_MAP_POINTS", "1000000"))
SCENARIO = os.environ.get("REPRO_BENCH_MAP_SCENARIO", "city_block")
TILE_SIZE = float(os.environ.get("REPRO_BENCH_MAP_TILE", "32.0"))
N_QUERIES = int(os.environ.get("REPRO_BENCH_MAP_QUERIES", "256"))


@pytest.fixture(scope="module")
def sweep():
    """The L2-size cut over one shared sharded map index."""
    return MapScaleSweep(SCENARIO, n_points=N_POINTS, tile_size=TILE_SIZE,
                         n_queries=N_QUERIES).run()


def test_map_scale_sensitivity_report(benchmark, sweep):
    """Regenerate the map-scale table and check its structural claims."""
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    write_result("map_scale_sensitivity", render_map_scale_sensitivity(result))
    maybe_record(lambda ctx: collect_map_scale(
        result, commit=ctx.commit, run_id=ctx.run_id, order=ctx.order))

    assert result.n_points >= N_POINTS
    names = [geometry.name for geometry in result.geometries]
    assert set(MAP_SCALE_GEOMETRY_NAMES) <= set(names)

    rows = result.comparison_rows()
    by_name = {row["geometry"].name: row for row in rows}

    # Demand bytes are geometry-independent and the compressed search
    # requests far fewer of them, exactly like at frame scale.
    demands = {(row["base"]["bytes_loaded"], row["other"]["bytes_loaded"])
               for row in rows}
    assert len(demands) == 1
    base_demand, bonsai_demand = demands.pop()
    assert bonsai_demand < 0.8 * base_demand

    for row in rows:
        assert row["other"]["l2_to_l1_bytes"] < row["base"]["l2_to_l1_bytes"]
        assert row["other"]["dram_to_l2_bytes"] < row["base"]["dram_to_l2_bytes"]

    # The map-scale point: the baseline's DRAM traffic is capacity-driven —
    # a 256 KB L2 moves strictly more lines than the 4 MB one — so the
    # absolute Bonsai saving is largest where L2 is scarce.
    assert (by_name["l2-256k"]["base"]["dram_to_l2_bytes"]
            > by_name["l2-4m"]["base"]["dram_to_l2_bytes"])
    savings_small = (by_name["l2-256k"]["base"]["dram_to_l2_bytes"]
                     - by_name["l2-256k"]["other"]["dram_to_l2_bytes"])
    savings_large = (by_name["l2-4m"]["base"]["dram_to_l2_bytes"]
                     - by_name["l2-4m"]["other"]["dram_to_l2_bytes"])
    assert savings_small > savings_large
