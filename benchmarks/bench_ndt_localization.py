"""Extension — K-D Bonsai on the NDT localization workload.

The paper evaluates the euclidean-cluster task and notes that the NDT
localization node is "also subject to our optimizations" because it, too, is
radius-search bound (Figure 2).  This benchmark quantifies that claim with
the same methodology as the euclidean-cluster comparison: it registers a few
scans against a map with the baseline and the Bonsai search and reports the
relative change of bytes, loads, time and energy.

Both configurations issue their radius queries through the batched engine
(:mod:`repro.runtime`): every NDT iteration sends all scan points as one
batched query, whose statistics aggregate exactly as per-query searches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.workloads import NDTLocalizationPipeline

from paper_reference import write_result


@pytest.fixture(scope="module")
def ndt_measurements(bench_sequence):
    map_cloud = bench_sequence.frame(0)
    scans = [bench_sequence.frame(i) for i in range(1, 4)]
    ego_speed = bench_sequence.config.ego_speed_mps
    dt = 1.0 / bench_sequence.config.frame_rate_hz
    initials = [(ego_speed * dt * (i + 1) - 0.3, 0.0, 0.0) for i in range(len(scans))]
    baseline = NDTLocalizationPipeline(map_cloud, use_bonsai=False)
    bonsai = NDTLocalizationPipeline(map_cloud, use_bonsai=True)
    return (baseline.register_sequence(scans, initials),
            bonsai.register_sequence(scans, initials))


def _total(measurements, attribute):
    return float(sum(getattr(m, attribute) for m in measurements))


def test_ndt_localization_report(benchmark, ndt_measurements):
    """Regenerate the NDT-improvement table (an extension beyond the paper)."""
    baseline, bonsai = benchmark.pedantic(lambda: ndt_measurements, rounds=1, iterations=1)

    rows = []
    changes = {}
    for label, attribute in (("Bytes to fetch leaf points", "point_bytes_loaded"),
                             ("Committed loads", "loads"),
                             ("Registration time", "seconds"),
                             ("Registration energy", "energy_j")):
        base_total = _total(baseline, attribute)
        bonsai_total = _total(bonsai, attribute)
        change = (bonsai_total - base_total) / base_total if base_total else 0.0
        changes[attribute] = change
        rows.append((label, f"{base_total:.4g}", f"{bonsai_total:.4g}", f"{change:+.1%}"))
    text = render_table(
        ("Metric", "Baseline", "Bonsai-extensions", "Relative change"),
        rows,
        title="Extension - K-D Bonsai applied to NDT localization",
    )
    write_result("ndt_localization", text)

    # Shape: the same qualitative benefit as the euclidean-cluster task.
    assert changes["point_bytes_loaded"] < -0.4
    assert changes["loads"] < -0.1
    assert changes["seconds"] < -0.02
    assert changes["energy_j"] < -0.02
    # And identical pose estimates.
    for base, new in zip(baseline, bonsai):
        np.testing.assert_allclose(new.translation, base.translation, atol=1e-9)


def test_ndt_registration_kernel(benchmark, bench_sequence):
    """Time one baseline NDT registration (map build excluded)."""
    pipeline = NDTLocalizationPipeline(bench_sequence.frame(0), use_bonsai=False)
    scan = bench_sequence.frame(1)

    def run():
        return pipeline.register_scan(scan, initial_translation=(0.5, 0.0, 0.0)).iterations

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 1


def test_ndt_queries_served_by_batched_engine(benchmark, bench_sequence):
    """Each NDT iteration issues one batched query covering all scan points."""
    pipeline = NDTLocalizationPipeline(bench_sequence.frame(0), use_bonsai=False)
    assert pipeline.matcher._backend.name == "baseline-batched"  # noqa: SLF001
    measurement = benchmark.pedantic(
        pipeline.register_scan, args=(bench_sequence.frame(1),),
        kwargs={"initial_translation": (0.5, 0.0, 0.0)}, rounds=1, iterations=1)
    stats = pipeline.matcher.search_stats
    # One query per (scan point, iteration) pair, batched per iteration.
    assert stats.queries > 0
    assert stats.queries % measurement.iterations == 0
