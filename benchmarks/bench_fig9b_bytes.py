"""Figure 9b — bytes loaded to fetch leaf points during radius search.

Paper: on the first frame of the data set, the baseline loads 4.85 MB of
point data during the search while the Bonsai-extensions load 1.77 MB (37%).
The benchmark measures the same quantity on the first synthetic frame and on
the whole frame set.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_fig9b, render_table
from repro.core import compress_tree
from repro.kdtree import build_kdtree

from paper_reference import PAPER, write_result


def test_fig9b_report(benchmark, comparison, baseline_measurements, bonsai_measurements):
    """Regenerate Figure 9b (whole set plus the frame #1 breakdown)."""
    text = benchmark.pedantic(render_fig9b, args=(comparison, PAPER["fig9b_fraction"]),
                              rounds=1, iterations=1)

    first_baseline = baseline_measurements[0]
    first_bonsai = bonsai_measurements[0]
    frame_fraction = first_bonsai.point_bytes_loaded / first_baseline.point_bytes_loaded
    frame_rows = [
        ("Baseline", f"{first_baseline.point_bytes_loaded / 1e6:.2f} MB", "4.85 MB"),
        ("Bonsai-extensions", f"{first_bonsai.point_bytes_loaded / 1e6:.2f} MB",
         f"1.77 MB ({PAPER['fig9b_fraction']:.0%})"),
        ("Fraction", f"{frame_fraction:.1%}", f"{PAPER['fig9b_fraction']:.0%}"),
    ]
    text += "\n\n" + render_table(
        ("Configuration", "Frame #1 (measured)", "Paper (frame #1)"),
        frame_rows,
        title="Figure 9b - first frame detail",
    )
    write_result("fig9b_bytes", text)

    # Shape: the compressed search loads roughly a third of the bytes.
    assert 0.25 < comparison.bytes_fraction < 0.55
    assert 0.25 < frame_fraction < 0.55


def test_fig9b_static_compression_ratio(benchmark, clustering_input):
    """The static compressed-array footprint also lands near the paper's 37%."""
    tree = build_kdtree(clustering_input)
    report = benchmark.pedantic(compress_tree, args=(tree,), rounds=1, iterations=1)
    assert 0.25 < report.compression_ratio < 0.55


def test_fig9b_compression_kernel(benchmark, clustering_input):
    """Time the whole-tree leaf compression pass (build-time overhead)."""
    def run():
        tree = build_kdtree(clustering_input)
        return compress_tree(tree).compressed_bytes

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
