"""Table V — area and power of the K-D Bonsai hardware additions.

Paper: the compression/decompression unit and the four (A-B')^2 FUs add
0.0511 mm^2 (+0.36% of the baseline core) and 24 mW of dynamic power
(+1.29%).  The benchmark cross-checks those synthesis results with the
bottom-up gate-count model and regenerates the table.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table5
from repro.hwmodel import TABLE_V, estimate_bonsai_area

from paper_reference import PAPER, write_result


@pytest.fixture(scope="module")
def area_estimates():
    return estimate_bonsai_area()


def test_table5_report(benchmark, area_estimates):
    """Regenerate Table V and check the overhead magnitudes."""
    text = benchmark.pedantic(render_table5, args=(area_estimates, TABLE_V),
                              rounds=1, iterations=1)
    write_result("table5_area_power", text)

    # Paper-reported relative overheads (inputs of the model, checked exactly).
    assert TABLE_V.relative_area_increase == pytest.approx(
        PAPER["table5_area_increase"], abs=5e-4)
    assert TABLE_V.relative_dynamic_power_increase == pytest.approx(
        PAPER["table5_power_increase"], abs=2e-3)

    # Bottom-up cross-check: same order of magnitude, still a tiny fraction
    # of the 14.26 mm^2 core.
    modelled_increase = area_estimates["total_area_mm2"] / TABLE_V.processor.area_mm2
    assert modelled_increase < 0.03
    assert 0.1 < area_estimates["total_area_mm2"] / TABLE_V.bonsai_total.area_mm2 < 10.0


def test_table5_area_model_kernel(benchmark):
    """Time the analytic area/power estimation."""
    result = benchmark(estimate_bonsai_area)
    assert result["total_area_mm2"] > 0
