"""Ablation — the error shell (guaranteed accuracy) vs. naive truncation.

The paper's key safety feature is the worst-case error shell (Eq. 12): any
classification that could have flipped under fp16 rounding is recomputed in
32-bit, so results are bit-identical to the baseline.  This ablation compares
three leaf-processing policies on the same searches:

* baseline 32-bit inspection;
* naive fp16 truncation (no shell) — the Table I error reappears;
* K-D Bonsai with the shell — zero errors at the cost of recomputing a
  fraction of a percent of classifications.
"""

from __future__ import annotations

import pytest

from repro.analysis import classification_error, render_table
from repro.engine import get_backend
from repro.core.floatfmt import FLOAT16
from repro.kdtree import build_kdtree, radius_search

from paper_reference import PAPER, write_result

RADIUS = 0.6


@pytest.fixture(scope="module")
def shell_ablation(clustering_input):
    tree = build_kdtree(clustering_input)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 7)]

    naive = classification_error(tree, queries, RADIUS, FLOAT16)

    bonsai_tree = build_kdtree(clustering_input)
    bonsai = get_backend("bonsai-perquery", bonsai_tree)
    mismatched_searches = 0
    for query in queries:
        expected = sorted(radius_search(tree, query, RADIUS))
        got = sorted(bonsai.search(query, RADIUS))
        mismatched_searches += int(expected != got)
    return {
        "naive": naive,
        "bonsai_recompute_rate": bonsai.bonsai_stats.inconclusive_rate,
        "bonsai_mismatches": mismatched_searches,
        "n_queries": len(queries),
    }


def test_ablation_shell_report(benchmark, shell_ablation):
    """Regenerate the shell-vs-truncation comparison."""
    benchmark.pedantic(lambda: shell_ablation["n_queries"], rounds=1, iterations=1)
    naive = shell_ablation["naive"]
    rows = [
        ("Baseline (32-bit)", "0% (by definition)", "0%", "-"),
        ("Naive fp16 truncation (no shell)",
         f"{naive.error_rate:.3%} misclassified",
         f"{PAPER['table1']['ieee_fp16']:.3%} (Table I)", "no recomputation"),
        ("K-D Bonsai (shell + recompute)",
         f"{shell_ablation['bonsai_mismatches']} mismatched searches",
         "0 (guaranteed)",
         f"{shell_ablation['bonsai_recompute_rate']:.3%} recomputed"),
    ]
    text = render_table(
        ("Policy", "Error (measured)", "Paper", "Cost"),
        rows,
        title="Ablation - error shell (Eq. 12) vs. naive precision reduction",
    )
    write_result("ablation_shell", text)

    # Shape: truncation introduces (rare) errors, the shell removes all of
    # them while recomputing well under 1% of classifications.
    assert naive.misclassified > 0
    assert shell_ablation["bonsai_mismatches"] == 0
    assert shell_ablation["bonsai_recompute_rate"] < 0.01
    assert shell_ablation["bonsai_recompute_rate"] > 0.0


def test_ablation_shell_kernel(benchmark, clustering_input):
    """Time the shell-protected search over a query batch."""
    tree = build_kdtree(clustering_input)
    bonsai = get_backend("bonsai-perquery", tree)
    queries = [clustering_input[i] for i in range(0, len(clustering_input), 30)]

    def run():
        return sum(len(bonsai.search(q, RADIUS)) for q in queries)

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
