"""Section III-A — sign/exponent sharing across k-d tree leaves.

Paper: over 37M points feeding the euclidean-cluster node, 78% of leaves share
the sign and exponent of the x coordinate and 83% of the y coordinate.  The
benchmark measures the same statistic over the synthetic frame set.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import aggregate_similarity, leaf_similarity
from repro.kdtree import build_kdtree
from repro.pointcloud import preprocess_for_clustering

from paper_reference import PAPER, write_result


@pytest.fixture(scope="module")
def similarity(bench_clouds):
    trees = [build_kdtree(preprocess_for_clustering(cloud)) for cloud in bench_clouds]
    return aggregate_similarity(trees)


def test_leaf_similarity_report(benchmark, similarity):
    """Regenerate the Section III-A statistic (sharing rate per coordinate)."""
    benchmark.pedantic(similarity.share_rate, args=("x",), rounds=1, iterations=1)
    rows = []
    for coord in ("x", "y", "z"):
        paper = PAPER["leaf_similarity"].get(coord)
        rows.append((
            coord,
            f"{similarity.share_rate(coord) * 100:.1f}%",
            f"{paper * 100:.0f}%" if paper is not None else "(not reported)",
        ))
    rows.append(("all three", f"{similarity.fully_shared_rate * 100:.1f}%", "(not reported)"))
    text = render_table(
        ("Coordinate", "Leaves sharing <sign, exponent> (measured)", "Paper"),
        rows,
        title="Section III-A - Value similarity across k-d tree leaves",
    )
    write_result("leaf_similarity", text)

    # Shape: the horizontal coordinates share in a majority of leaves, which
    # is what makes value-similarity compression worthwhile.
    assert similarity.share_rate("x") > 0.5
    assert similarity.share_rate("y") > 0.5
    assert similarity.n_leaves > 100


def test_leaf_similarity_kernel(benchmark, clustering_input):
    """Time the per-tree similarity analysis."""
    tree = build_kdtree(clustering_input)
    stats = benchmark.pedantic(leaf_similarity, args=(tree,), rounds=1, iterations=1)
    assert stats.n_leaves == tree.n_leaves
