"""Scenario matrix sweep: every registered world x {baseline, Bonsai}.

The seed reproduction validated the compressed search against a single urban
point distribution.  This benchmark runs the *end-to-end* perception
pipeline (clustering → filtering → tracking → NDT localization, through the
batched query engine) over every scenario in :mod:`repro.scenarios` with the
baseline and the Bonsai search, and regenerates a results table showing that
the paper's central claim — fewer bytes fetched per query at identical
functional results — holds across point distributions, from dense indoor
aisles to sparse rural fields.

Scale knobs: ``REPRO_BENCH_SCENARIO_FRAMES`` (default 3),
``REPRO_BENCH_SCENARIO_BEAMS`` / ``_AZIMUTH`` (default 18 x 180).
With ``REPRO_TRENDS_DIR`` set, the regenerated matrix is also recorded into
the trend store (family ``scenario-matrix``, one record per scenario x
backend) — same numbers as the rendered table, machine-readable, keyed by
commit (``docs/TRENDS.md``).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import render_table
from repro.engine import ExecutionConfig
from repro.scenarios import scenario_names
from repro.workloads import PipelineRunner, PipelineRunnerConfig

from repro.trends import collect_pipeline_run, maybe_record

from paper_reference import write_result

N_FRAMES = int(os.environ.get("REPRO_BENCH_SCENARIO_FRAMES", "3"))
N_BEAMS = int(os.environ.get("REPRO_BENCH_SCENARIO_BEAMS", "18"))
N_AZIMUTH = int(os.environ.get("REPRO_BENCH_SCENARIO_AZIMUTH", "180"))


def _run(name: str, backend: str):
    runner = PipelineRunner.from_scenario(
        name,
        config=PipelineRunnerConfig(execution=ExecutionConfig(backend=backend)),
        n_frames=N_FRAMES, n_beams=N_BEAMS, n_azimuth_steps=N_AZIMUTH,
    )
    return runner.run()


@pytest.fixture(scope="module")
def matrix():
    """Every scenario run in both configurations."""
    return {
        name: (_run(name, "baseline-batched"), _run(name, "bonsai-batched"))
        for name in scenario_names()
    }


def test_scenario_matrix_report(benchmark, matrix):
    """Regenerate the scenario-matrix table (workload-diversity extension)."""
    results = benchmark.pedantic(lambda: matrix, rounds=1, iterations=1)

    rows = []
    for name, (baseline, bonsai) in results.items():
        base_m = baseline.metrics()
        bonsai_m = bonsai.metrics()
        base_bytes = base_m["cluster_search"]["point_bytes_loaded"]
        bonsai_bytes = bonsai_m["cluster_search"]["point_bytes_loaded"]
        byte_change = (bonsai_bytes - base_bytes) / base_bytes if base_bytes else 0.0
        loc = base_m.get("localization") or {}
        rows.append((
            name,
            base_m["filtered_points_total"],
            base_m["clusters_total"],
            base_m["confirmed_tracks_final"],
            f"{loc.get('mean_error_m', float('nan')):.3f}",
            f"{base_bytes:,}",
            f"{bonsai_bytes:,}",
            f"{byte_change:+.1%}",
        ))
    text = render_table(
        ("Scenario", "Filtered pts", "Clusters", "Tracks", "Loc err [m]",
         "Baseline leaf B", "Bonsai leaf B", "Change"),
        rows,
        title=(f"Scenario matrix - end-to-end pipeline, {N_FRAMES} frames at "
               f"{N_BEAMS}x{N_AZIMUTH} rays (extension beyond the paper)"),
    )
    write_result("scenario_matrix", text)
    maybe_record(lambda ctx: [
        collect_pipeline_run(run.metrics(), scenario=name, backend=run.backend,
                             commit=ctx.commit, run_id=ctx.run_id,
                             order=ctx.order)
        for name, pair in results.items() for run in pair
    ])

    for name, (baseline, bonsai) in results.items():
        base_m = baseline.metrics()
        bonsai_m = bonsai.metrics()
        # Functional parity: the compressed search must not change any
        # pipeline outcome, on any scenario.
        for key in ("clusters_total", "detections_kept_total",
                    "confirmed_tracks_final", "track_labels", "frame_indices"):
            assert bonsai_m[key] == base_m[key], (name, key)
        assert bonsai_m["cluster_search"]["points_in_radius"] == \
            base_m["cluster_search"]["points_in_radius"], name
        # And the central claim: fewer bytes fetched to answer the queries.
        assert bonsai_m["cluster_search"]["point_bytes_loaded"] < \
            0.7 * base_m["cluster_search"]["point_bytes_loaded"], name


def test_single_scenario_pipeline_kernel(benchmark):
    """Time one end-to-end baseline pipeline run on the densest world."""
    benchmark.pedantic(lambda: _run("warehouse_indoor", "baseline-batched"),
                       rounds=1, iterations=2)
