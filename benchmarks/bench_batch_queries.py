"""Engineering benchmark — the batched query engine vs. the per-query loop.

Not a paper figure: this benchmark guards the performance contract of
:mod:`repro.runtime`.  A 10k-query sweep over one preprocessed LiDAR frame
must run at least 5x faster through the batched engine than through the
per-query reference paths, for radius search and for kNN, while returning
identical results.

It also regenerates the *backend-dimension* table: the same sweep through
every execution backend registered in :mod:`repro.engine` (selected by
name — no backend class is imported here), asserting identical results and
reporting each backend's throughput side by side.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.engine import PointCloudIndex, backend_names
from repro.kdtree import build_kdtree, nearest_neighbors, radius_search
from repro.pointcloud import preprocess_for_clustering
from repro.runtime import batch_knn, batch_radius_search

from paper_reference import write_result

N_QUERIES = 10_000
#: Query count of the all-backends table (the per-query backends run the
#: sweep in pure Python, so the dimension table uses a lighter load).
N_BACKEND_QUERIES = 2_000
RADIUS = 0.6
K = 5


@pytest.fixture(scope="module")
def sweep_setup(bench_sequence):
    cloud = preprocess_for_clustering(bench_sequence.frame(0))
    tree = build_kdtree(cloud)
    rng = np.random.default_rng(31)
    base = cloud.points[rng.integers(0, len(cloud), N_QUERIES)]
    queries = base.astype(np.float64) + rng.normal(0.0, 0.25, base.shape)
    return tree, queries


def test_batch_radius_speedup(benchmark, sweep_setup):
    """Batched radius sweep: >= 5x over the per-query loop, identical results."""
    tree, queries = sweep_setup

    result = benchmark.pedantic(
        batch_radius_search, args=(tree, queries, RADIUS), rounds=1, iterations=1)
    batch_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    single = [sorted(radius_search(tree, q, RADIUS)) for q in queries]
    loop_seconds = time.perf_counter() - start

    assert result.as_lists() == single
    speedup = loop_seconds / batch_seconds
    write_result("batch_radius_sweep", render_table(
        ("Path", "Time [s]", "Queries/s"),
        (("per-query loop", f"{loop_seconds:.3f}", f"{N_QUERIES / loop_seconds:,.0f}"),
         ("batched engine", f"{batch_seconds:.3f}", f"{N_QUERIES / batch_seconds:,.0f}"),
         ("speed-up", f"{speedup:.1f}x", "")),
        title=f"Batched radius sweep - {N_QUERIES} queries, r={RADIUS} m",
    ))
    assert speedup >= 5.0


def test_backend_dimension_table(benchmark, sweep_setup):
    """Every registered backend over one sweep: identical results, one table.

    Backends are selected purely by registry name through the
    :class:`~repro.engine.index.PointCloudIndex` facade; the table gives the
    radius/kNN throughput of each, with the baseline-batched backend as the
    reference row.
    """
    tree, queries = sweep_setup
    queries = queries[:N_BACKEND_QUERIES]
    with PointCloudIndex(tree) as index:

        def run_all():
            timings = {}
            for name in backend_names():
                backend = index.backend(name)
                start = time.perf_counter()
                radius_result = backend.radius_search(queries, RADIUS)
                radius_seconds = time.perf_counter() - start
                start = time.perf_counter()
                knn_result = backend.knn(queries, K)
                knn_seconds = time.perf_counter() - start
                timings[name] = (radius_result, radius_seconds, knn_result, knn_seconds)
            return timings

        timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

        reference, _, knn_reference, _ = timings["baseline-batched"]
        for name, (radius_result, _, knn_result, _) in timings.items():
            assert np.array_equal(radius_result.offsets, reference.offsets), name
            assert np.array_equal(radius_result.point_indices,
                                  reference.point_indices), name
            assert np.array_equal(knn_result.indices, knn_reference.indices), name

        rows = [
            (name,
             f"{N_BACKEND_QUERIES / radius_seconds:,.0f}",
             f"{N_BACKEND_QUERIES / knn_seconds:,.0f}",
             "identical")
            for name, (_, radius_seconds, _, knn_seconds) in sorted(timings.items())
        ]
        write_result("batch_backends", render_table(
            ("Backend", "Radius q/s", "kNN q/s", "Results vs reference"),
            rows,
            title=(f"Execution-backend dimension - {N_BACKEND_QUERIES} queries, "
                   f"r={RADIUS} m, k={K} (one tree, backends by registry name)"),
        ))


def test_batch_knn_speedup(benchmark, sweep_setup):
    """Batched kNN sweep: >= 5x over the per-query loop, identical results."""
    tree, queries = sweep_setup

    result = benchmark.pedantic(
        batch_knn, args=(tree, queries, K), rounds=1, iterations=1)
    batch_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    single = [nearest_neighbors(tree, q, K) for q in queries]
    loop_seconds = time.perf_counter() - start

    batch_lists = result.as_lists()
    for expected, got in zip(single, batch_lists):
        assert [i for i, _ in expected] == [i for i, _ in got]
    speedup = loop_seconds / batch_seconds
    write_result("batch_knn_sweep", render_table(
        ("Path", "Time [s]", "Queries/s"),
        (("per-query loop", f"{loop_seconds:.3f}", f"{N_QUERIES / loop_seconds:,.0f}"),
         ("batched engine", f"{batch_seconds:.3f}", f"{N_QUERIES / batch_seconds:,.0f}"),
         ("speed-up", f"{speedup:.1f}x", "")),
        title=f"Batched kNN sweep - {N_QUERIES} queries, k={K}",
    ))
    assert speedup >= 5.0
