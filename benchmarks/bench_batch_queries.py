"""Engineering benchmark — the batched query engine vs. the per-query loop.

Not a paper figure: this benchmark guards the performance contract of
:mod:`repro.runtime`.  A 10k-query sweep over one preprocessed LiDAR frame
must run at least 5x faster through the batched engine than through the
per-query reference paths, for radius search and for kNN, while returning
identical results.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kdtree import build_kdtree, nearest_neighbors, radius_search
from repro.pointcloud import preprocess_for_clustering
from repro.runtime import batch_knn, batch_radius_search

from paper_reference import write_result

N_QUERIES = 10_000
RADIUS = 0.6
K = 5


@pytest.fixture(scope="module")
def sweep_setup(bench_sequence):
    cloud = preprocess_for_clustering(bench_sequence.frame(0))
    tree = build_kdtree(cloud)
    rng = np.random.default_rng(31)
    base = cloud.points[rng.integers(0, len(cloud), N_QUERIES)]
    queries = base.astype(np.float64) + rng.normal(0.0, 0.25, base.shape)
    return tree, queries


def test_batch_radius_speedup(benchmark, sweep_setup):
    """Batched radius sweep: >= 5x over the per-query loop, identical results."""
    tree, queries = sweep_setup

    result = benchmark.pedantic(
        batch_radius_search, args=(tree, queries, RADIUS), rounds=1, iterations=1)
    batch_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    single = [sorted(radius_search(tree, q, RADIUS)) for q in queries]
    loop_seconds = time.perf_counter() - start

    assert result.as_lists() == single
    speedup = loop_seconds / batch_seconds
    write_result("batch_radius_sweep", render_table(
        ("Path", "Time [s]", "Queries/s"),
        (("per-query loop", f"{loop_seconds:.3f}", f"{N_QUERIES / loop_seconds:,.0f}"),
         ("batched engine", f"{batch_seconds:.3f}", f"{N_QUERIES / batch_seconds:,.0f}"),
         ("speed-up", f"{speedup:.1f}x", "")),
        title=f"Batched radius sweep - {N_QUERIES} queries, r={RADIUS} m",
    ))
    assert speedup >= 5.0


def test_batch_knn_speedup(benchmark, sweep_setup):
    """Batched kNN sweep: >= 5x over the per-query loop, identical results."""
    tree, queries = sweep_setup

    result = benchmark.pedantic(
        batch_knn, args=(tree, queries, K), rounds=1, iterations=1)
    batch_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    single = [nearest_neighbors(tree, q, K) for q in queries]
    loop_seconds = time.perf_counter() - start

    batch_lists = result.as_lists()
    for expected, got in zip(single, batch_lists):
        assert [i for i, _ in expected] == [i for i, _ in got]
    speedup = loop_seconds / batch_seconds
    write_result("batch_knn_sweep", render_table(
        ("Path", "Time [s]", "Queries/s"),
        (("per-query loop", f"{loop_seconds:.3f}", f"{N_QUERIES / loop_seconds:,.0f}"),
         ("batched engine", f"{batch_seconds:.3f}", f"{N_QUERIES / batch_seconds:,.0f}"),
         ("speed-up", f"{speedup:.1f}x", "")),
        title=f"Batched kNN sweep - {N_QUERIES} queries, k={K}",
    ))
    assert speedup >= 5.0
